"""Table 1: planner capability matrix and search time on 128 A100s.

For every planner the table records which degrees of parallelism it
searches, whether it recommends the resource allocation itself, whether it
supports heterogeneous GPU types and multi-zone placements, and its search
time for OPT-350M on a 128-A100 cluster.
"""

from __future__ import annotations

from repro.baselines import get_baseline, list_baselines
from repro.core.objectives import Objective
from repro.experiments.common import (
    ExperimentTable,
    a100_topology,
    make_environment,
    make_sailor,
    make_baseline,
    opt_350m_job,
    resolve_scale,
)


#: Planner order of the paper's Table 1.
TABLE1_PLANNERS = ("piper", "amp", "varuna", "oobleck", "metis", "flashflex",
                   "galvatron", "aceso", "dtfm", "sailor")


def run(scale: str | object = "small", num_gpus: int = 128) -> ExperimentTable:
    """Reproduce Table 1 (capabilities + search time, 128 A100, OPT-350M)."""
    scale = resolve_scale(scale)
    num_gpus = scale.scaled_gpus(num_gpus, minimum=16)
    job = opt_350m_job()
    topology = a100_topology(num_gpus)
    env = make_environment(job, topology)
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title=f"Table 1: planner capabilities and search time ({num_gpus} A100, OPT-350M)",
        columns=["planner", "parallelism", "recommends_allocation",
                 "heterogeneous_gpus", "multi_zone", "search_time_s", "found"])

    for name in TABLE1_PLANNERS:
        if name == "sailor":
            planner = make_sailor(env, scale)
            result = planner.plan(job, topology, objective)
            table.add_row(planner="sailor", parallelism="3D",
                          recommends_allocation=True, heterogeneous_gpus=True,
                          multi_zone=True, search_time_s=result.search_time_s,
                          found=result.found)
            continue
        baseline = make_baseline(name, env, scale)
        result = baseline.plan(job, topology, objective)
        table.add_row(planner=name, parallelism=baseline.parallelism,
                      recommends_allocation=baseline.recommends_allocation,
                      heterogeneous_gpus=baseline.supports_heterogeneous,
                      multi_zone=baseline.supports_multizone,
                      search_time_s=result.search_time_s, found=result.found)

    table.notes = ("expected shape: only Sailor combines allocation choice, "
                   "heterogeneous GPUs and multi-zone; Metis/Oobleck-style "
                   "searches hit their time cap while Sailor stays in seconds")
    return table
