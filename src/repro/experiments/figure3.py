"""Figure 3: peak-memory estimates of prior planners vs. the real footprint.

OPT-350M on a homogeneous cluster of 4-GH200 nodes.  The paper shows five
deployed configurations (labelled ``N-gbs`` / ``dp-pp-mbs``) and the peak
memory each baseline predicts, next to the measured peak: baselines are off
by 25-95% because they ignore memory sources or assume uniform footprints,
while Sailor stays within a few percent.
"""

from __future__ import annotations

from repro.core.plan import ParallelizationPlan
from repro.experiments.common import (
    ExperimentTable,
    gh200_topology,
    make_environment,
    resolve_scale,
)
from repro.experiments.estimation import (
    ESTIMATION_PLANNERS,
    estimate_memory,
)
from repro.core.simulator import ReferenceSimulator
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec


#: The five configurations of Figure 3: (nodes, global batch, dp, pp, mbs).
FIGURE3_CONFIGS: tuple[tuple[int, int, int, int, int], ...] = (
    (2, 32, 2, 1, 2),
    (4, 64, 2, 2, 1),
    (8, 512, 2, 4, 8),
    (16, 1024, 16, 1, 8),
    (16, 1024, 8, 2, 8),
)

GPUS_PER_NODE = 4


def _build_plan(job: TrainingJobSpec, nodes: int, dp: int, pp: int,
                mbs: int) -> ParallelizationPlan:
    total_gpus = nodes * GPUS_PER_NODE
    tp = max(1, total_gpus // (dp * pp))
    tp = min(tp, GPUS_PER_NODE)
    return ParallelizationPlan.homogeneous(
        job, "gh200-4g", pipeline_parallel=pp, data_parallel=dp,
        tensor_parallel=tp, microbatch_size=mbs, zone="on-prem-a")


def run(scale: str | object = "small") -> ExperimentTable:
    """Reproduce Figure 3 (per-config peak-memory estimates, in GB)."""
    resolve_scale(scale)  # the configurations are fixed by the paper
    model = get_model("OPT-350M")

    table = ExperimentTable(
        title="Figure 3: peak-memory estimates vs. real, OPT-350M on GH200 nodes",
        columns=["config", "planner", "peak_memory_gb", "error_percent"])

    for nodes, gbs, dp, pp, mbs in FIGURE3_CONFIGS:
        job = TrainingJobSpec(model=model, global_batch_size=gbs,
                              sequence_length=2048)
        topology = gh200_topology(nodes)
        env = make_environment(job, topology)
        plan = _build_plan(job, nodes, dp, pp, mbs)
        label = f"{nodes}-{gbs} {dp}-{pp}-{mbs}"

        reference = ReferenceSimulator(env)
        real_peak = max(reference.peak_memory(plan))
        table.add_row(config=label, planner="real",
                      peak_memory_gb=real_peak / 1024 ** 3, error_percent=0.0)

        for planner in ESTIMATION_PLANNERS:
            estimate = estimate_memory(planner, env, plan)
            if estimate is None:
                table.add_row(config=label, planner=planner,
                              peak_memory_gb=float("nan"),
                              error_percent=float("nan"))
                continue
            table.add_row(config=label, planner=planner,
                          peak_memory_gb=estimate / 1024 ** 3,
                          error_percent=abs(estimate - real_peak) / real_peak * 100.0)

    table.notes = ("expected shape: baseline estimates are tens of percent off "
                   "(mostly underestimates); Sailor stays within a few percent")
    return table
