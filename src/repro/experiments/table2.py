"""Table 2: planner search times for the Figure 9b clusters.

Search time (seconds) of AMP, FlashFlex, Metis and Sailor for GPT-Neo-2.7B
on the 25%/75% A100/V100 mixes (32+96, 80+240, 128+384 GPUs).  In the paper
Metis always hits the 300-second cap, AMP and FlashFlex take tens to
hundreds of seconds at the largest size, and Sailor stays under a minute.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    ExperimentTable,
    gpt_neo_job,
    make_environment,
    mixed_a100_v100_topology,
    resolve_scale,
    run_planner,
)


TABLE2_PLANNERS = ("amp", "flashflex", "metis", "sailor")
TABLE2_SETUPS = ((32, 96), (80, 240), (128, 384))


def run(scale: str | object = "small",
        setups: tuple[tuple[int, int], ...] = TABLE2_SETUPS,
        planners: tuple[str, ...] = TABLE2_PLANNERS) -> ExperimentTable:
    """Reproduce Table 2 (search times for the Figure 9b setups)."""
    scale = resolve_scale(scale)
    job = gpt_neo_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Table 2: search times (s) for the Figure 9b clusters (GPT-Neo-2.7B)",
        columns=["setup", "planner", "search_time_s", "found"])

    for num_a100, num_v100 in setups:
        a100 = scale.scaled_gpus(num_a100, minimum=8)
        v100 = scale.scaled_gpus(num_v100, minimum=8)
        setup = f"{a100}-{v100}"
        topology = mixed_a100_v100_topology(a100, v100)
        env = make_environment(job, topology)
        for name in planners:
            result = run_planner(name, env, job, topology, objective, scale)
            table.add_row(setup=setup, planner=name,
                          search_time_s=result.search_time_s,
                          found=result.found)

    table.notes = ("expected shape: Metis pins at its time cap; Sailor's search "
                   "is the fastest of the heterogeneity-aware planners at scale")
    return table
