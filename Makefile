# Developer entry points for the Sailor reproduction.
#
#   make test                       tier-1 test suite
#   make lint                       project-invariant static analysis
#                                   (repro.analysis; rules + suppression
#                                   contract in CONTRACTS.md).  Exit 0 on
#                                   a clean tree, 1 on findings, 2 on
#                                   usage errors / rule crashes.
#   make bench                      planner/core micro-benchmarks + churn
#                                   replay benches -> $(BENCH_OUT)
#                                   (BENCH_SCALE=full by default, which
#                                   includes the 1024/2048/4096/8192-GPU
#                                   scale points; BENCH_SCALE=smoke skips
#                                   them), then runs the compare_bench.py
#                                   regression gate against
#                                   $(BENCH_BASELINE) and -- only on a
#                                   clean gate -- appends a one-line run
#                                   summary (git rev + BENCH_SCALE +
#                                   per-bench medians) to $(BENCH_HISTORY)
#   make bench-compare              diff $(BENCH_BASELINE) vs $(BENCH_OUT) on
#                                   median-of-rounds; fails on >20%
#                                   planner/simulator regression
#   make ci                         invariant lint (plus --help smokes of
#                                   the bench tooling), then tier-1 tests
#                                   + fast bench smoke subset
#                                   + the compare_bench.py regression gate,
#                                   with per-phase wall time printed.  The
#                                   smoke subset's budget bench asserts the
#                                   straggler certificates fire (nonzero
#                                   SearchStats.suffix_certified); the
#                                   128-GPU budget and 256-GPU points --
#                                   run once in the tier-1 phase -- assert
#                                   the candidate-ordering tail kills fire
#                                   (nonzero candidates_killed_unevaluated,
#                                   so a disarmed ordering path fails CI);
#                                   the 256-GPU min-cost point asserts the
#                                   dominated-family interval memo skips
#                                   whole families (nonzero
#                                   families_skipped), and tier-1 carries
#                                   the forced fused-combine on/off
#                                   equivalence smoke
#                                   (test_fused_combine_preserves_plans_
#                                   when_forced), so a disarmed family
#                                   gate or a drifting fused kernel fails
#                                   CI; and the
#                                   deadline/crash smokes assert the anytime
#                                   salvage path works (a 256-GPU plan at a
#                                   50 ms deadline returns a feasible plan
#                                   with a finite certified gap; a crash-
#                                   injected parallel plan loses zero
#                                   branches), so a silently-disarmed
#                                   certificate or salvage path fails CI
#                                   rather than just running slow.
#   make profile                    cProfile one planner call (PROFILE_ARGS=...;
#                                   add --stats to dump the SearchStats
#                                   counters as JSON next to the profile,
#                                   --phases to split the wall time into
#                                   forward-build / backward-scoring /
#                                   suffix-solve / evaluation /
#                                   candidate-enumeration buckets)

PYTHON ?= python
BENCH_OUT ?= BENCH_new.json
BENCH_BASELINE ?= BENCH_seed.json
BENCH_CI_OUT ?= BENCH_ci.json
BENCH_HISTORY ?= BENCH_history.jsonl
# Scale toggle consumed by benchmarks/test_bench_core_micro.py: the
# 1024/2048/4096/8192-GPU planner points only run under BENCH_SCALE=full.
# `make bench` (the recorded set) defaults to full; `make ci`'s smoke
# subset to smoke.
BENCH_SCALE ?= full
# Bench smoke subset for `make ci`: every micro-bench plus the 32/64-GPU
# and budget-constrained planner points, plus the short churn-replay smoke
# (which asserts zero dropped events and >=1 incremental cache hit, so a
# silently-cold search context fails CI).  The 128/256/512 scale points
# still run *once* as correctness tests inside the tier-1 phase (ROADMAP
# defines tier-1 as the whole tree); the filter only skips their slower
# timed re-measurement and the 1000-event churn point (run `make bench`
# for the full recorded set).  The 1024/2048/4096/8192 points are
# additionally BENCH_SCALE-gated (skipped under smoke even without the
# filter).
CI_BENCH_FILTER ?= not 128 and not 256 and not 512 and not 1024 \
	and not 2048 and not 4096 and not 8192 and not 1000
PROFILE_ARGS ?=

.PHONY: test lint bench bench-compare ci profile

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis

# The history line is appended only after the compare gate passes (each
# recipe line is its own gate under `set -e` semantics: a failing compare
# stops make before the append), and it is stamped with BENCH_SCALE so
# full-scale points are never read against smoke runs.
bench:
	BENCH_SCALE=$(BENCH_SCALE) PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_bench_core_micro.py \
		benchmarks/test_bench_deadline.py \
		benchmarks/test_bench_reconfiguration.py \
		--benchmark-only -q --benchmark-json=$(BENCH_OUT)
	PYTHONPATH=src $(PYTHON) benchmarks/compare_bench.py \
		$(BENCH_BASELINE) $(BENCH_OUT)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_history.py $(BENCH_OUT) \
		--history $(BENCH_HISTORY) --scale $(BENCH_SCALE)

bench-compare:
	PYTHONPATH=src $(PYTHON) benchmarks/compare_bench.py \
		$(BENCH_BASELINE) $(BENCH_OUT)

ci:
	@set -e; \
	tl=$$(date +%s); \
	PYTHONPATH=src $(PYTHON) -m repro.analysis; \
	PYTHONPATH=src $(PYTHON) benchmarks/compare_bench.py --help > /dev/null; \
	PYTHONPATH=src $(PYTHON) benchmarks/profile_planner.py --help > /dev/null; \
	t0=$$(date +%s); echo "[ci] lint + tooling smokes: $$((t0 - tl))s"; \
	PYTHONPATH=src $(PYTHON) -m pytest -x -q; \
	t1=$$(date +%s); echo "[ci] tier-1 tests: $$((t1 - t0))s"; \
	BENCH_SCALE=smoke PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_bench_core_micro.py \
		benchmarks/test_bench_deadline.py \
		benchmarks/test_bench_reconfiguration.py \
		--benchmark-only -q -k "$(CI_BENCH_FILTER)" \
		--benchmark-json=$(BENCH_CI_OUT); \
	t2=$$(date +%s); echo "[ci] bench smoke: $$((t2 - t1))s"; \
	PYTHONPATH=src $(PYTHON) benchmarks/compare_bench.py \
		$(BENCH_BASELINE) $(BENCH_CI_OUT); \
	t3=$$(date +%s); echo "[ci] bench compare: $$((t3 - t2))s"; \
	echo "[ci] total: $$((t3 - tl))s"

profile:
	PYTHONPATH=src $(PYTHON) benchmarks/profile_planner.py $(PROFILE_ARGS)
