# Developer entry points for the Sailor reproduction.
#
#   make test                       tier-1 test suite
#   make bench                      planner/core micro-benchmarks -> $(BENCH_OUT)
#   make bench-compare              diff $(BENCH_BASELINE) vs $(BENCH_OUT);
#                                   fails on >20% planner/simulator regression
#   make profile                    cProfile one planner call (PROFILE_ARGS=...)

PYTHON ?= python
BENCH_OUT ?= BENCH_new.json
BENCH_BASELINE ?= BENCH_seed.json
PROFILE_ARGS ?=

.PHONY: test bench bench-compare profile

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_core_micro.py \
		--benchmark-only -q --benchmark-json=$(BENCH_OUT)

bench-compare:
	PYTHONPATH=src $(PYTHON) benchmarks/compare_bench.py \
		$(BENCH_BASELINE) $(BENCH_OUT)

profile:
	PYTHONPATH=src $(PYTHON) benchmarks/profile_planner.py $(PROFILE_ARGS)
