# Developer entry points for the Sailor reproduction.
#
#   make test                       tier-1 test suite
#   make bench                      planner/core micro-benchmarks -> $(BENCH_OUT)
#   make bench-compare              diff $(BENCH_BASELINE) vs $(BENCH_OUT);
#                                   fails on >20% planner regression

PYTHON ?= python
BENCH_OUT ?= BENCH_new.json
BENCH_BASELINE ?= BENCH_seed.json

.PHONY: test bench bench-compare

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_core_micro.py \
		--benchmark-only -q --benchmark-json=$(BENCH_OUT)

bench-compare:
	PYTHONPATH=src $(PYTHON) benchmarks/compare_bench.py \
		$(BENCH_BASELINE) $(BENCH_OUT)
