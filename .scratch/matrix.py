"""Capture/verify the 13-scenario plan matrix (byte-identity harness).

Usage:
    PYTHONPATH=src python .scratch/matrix.py capture OUT.json
    PYTHONPATH=src python .scratch/matrix.py verify BASELINE.json

capture: run the scenario matrix under the baseline config set and dump
plan JSON per (scenario, config).
verify: re-run, including every new-toggle off variant, and assert every
plan is byte-identical to the baseline's default-config plan.
"""
import json
import sys

from repro.core.dp_solver import DPSolverConfig
from repro.core.objectives import Objective
from repro.core.planner import PlannerConfig, SailorPlanner
from repro.core.serialization import plan_to_json
from repro.core.simulator import build_environment
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec


def build_scenarios():
    opt_job = TrainingJobSpec(model=get_model("OPT-350M"),
                              global_batch_size=256, sequence_length=2048)
    neo_job = TrainingJobSpec(model=get_model("GPT-Neo-2.7B"),
                              global_batch_size=256, sequence_length=2048)
    mixed = ClusterTopology.single_zone(
        "us-central1-a", {"a2-highgpu-4g": 4, "n1-standard-v100-4": 4})
    big_mixed = ClusterTopology.single_zone(
        "us-central1-a", {"a2-highgpu-4g": 8, "n1-standard-v100-4": 8})
    geo = ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 2},
        "us-central1-b": {"a2-highgpu-4g": 2},
        "us-west1-a": {"a2-highgpu-4g": 2},
    })
    opt_env = build_environment(opt_job, mixed, seed=7)
    geo_env = build_environment(opt_job, geo, seed=11)
    neo_env = build_environment(neo_job, mixed, seed=13)
    a100_only = mixed.restricted_to_gpu("A100-40")

    # Budgets fixed so baseline and verify runs use identical objectives.
    unc = SailorPlanner(opt_env).plan(opt_job, mixed,
                                      Objective.max_throughput())
    budget = unc.evaluation.cost_per_iteration_usd * 0.6
    unc_geo = SailorPlanner(geo_env).plan(opt_job, geo,
                                          Objective.max_throughput())
    budget_geo = unc_geo.evaluation.cost_per_iteration_usd * 0.6

    return [
        ("mixed-maxthr", opt_env, opt_job, mixed, Objective.max_throughput(), {}),
        ("mixed-mincost", opt_env, opt_job, mixed, Objective.min_cost(), {}),
        ("mixed-budget", opt_env, opt_job, mixed,
         Objective.max_throughput(max_cost_per_iteration_usd=budget), {}),
        ("mixed-floor", opt_env, opt_job, mixed,
         Objective.min_cost(min_throughput_iters_per_s=0.05), {}),
        ("mixed-maxgpus", opt_env, opt_job, mixed,
         Objective.max_throughput(max_gpus=8), {}),
        ("a100-maxthr", opt_env, opt_job, a100_only,
         Objective.max_throughput(), {}),
        ("geo-maxthr", geo_env, opt_job, geo, Objective.max_throughput(), {}),
        ("geo-mincost", geo_env, opt_job, geo, Objective.min_cost(), {}),
        ("geo-budget", geo_env, opt_job, geo,
         Objective.max_throughput(max_cost_per_iteration_usd=budget_geo), {}),
        ("neo-maxthr", neo_env, neo_job, mixed, Objective.max_throughput(), {}),
        ("mixed-parallel", opt_env, opt_job, mixed, Objective.max_throughput(),
         {"parallel_workers": 2}),
        ("mixed-engine", opt_env, opt_job, mixed, Objective.max_throughput(),
         {"dp_config": DPSolverConfig(engine_min_states=0)}),
        ("bigmixed-maxthr", opt_env, opt_job, big_mixed,
         Objective.max_throughput(), {}),
    ]


BASE_CONFIGS = {
    "default": {},
    "no-ordering": {"candidate_ordering": False},
    "no-gate": {"enable_candidate_gate": False},
}

# Built lazily: the new toggles only exist in the tree under test.
def new_toggle_configs():
    return {
        "no-family-memo": {"family_interval_memo": False},
        "no-avail-floors": {"availability_aware_floors": False},
        "no-fused": {"dp_config": DPSolverConfig(fused_combine=False)},
        "no-fused-engine": {"dp_config": DPSolverConfig(
            engine_min_states=0, fused_combine=False)},
        "all-new-off": {"family_interval_memo": False,
                        "availability_aware_floors": False,
                        "dp_config": DPSolverConfig(fused_combine=False)},
        "exhaustive": {"dp_config": DPSolverConfig(enable_pruning=False)},
    }


def run_one(env, job, topology, objective, base_kwargs, extra):
    kwargs = dict(base_kwargs)
    kwargs.update(extra)
    planner = SailorPlanner(env, config=PlannerConfig(**kwargs))
    result = planner.plan(job, topology, objective)
    return {
        "found": result.found,
        "plan": plan_to_json(result.plan) if result.found else None,
        "time": result.evaluation.iteration_time_s if result.found else None,
        "cost": (result.evaluation.cost_per_iteration_usd
                 if result.found else None),
    }


def main():
    mode, path = sys.argv[1], sys.argv[2]
    scenarios = build_scenarios()
    if mode == "capture":
        out = {}
        for name, env, job, topo, objective, extra in scenarios:
            out[name] = {}
            for label, kwargs in BASE_CONFIGS.items():
                out[name][label] = run_one(env, job, topo, objective,
                                           kwargs, extra)
            print(f"captured {name}", flush=True)
        with open(path, "w") as fh:
            json.dump(out, fh, indent=1)
        return 0
    baseline = json.load(open(path))
    failures = []
    for name, env, job, topo, objective, extra in scenarios:
        want = baseline[name]["default"]
        for label, kwargs in {**BASE_CONFIGS, **new_toggle_configs()}.items():
            if name == "bigmixed-maxthr" and label == "exhaustive":
                continue  # exhaustive reference too slow on the big pool
            got = run_one(env, job, topo, objective, kwargs, extra)
            # Baseline non-default configs must also stay plan-identical to
            # the baseline default (they were captured identical).
            if got["plan"] != want["plan"] or got["found"] != want["found"]:
                failures.append((name, label))
                print(f"MISMATCH {name} {label}", flush=True)
            else:
                print(f"ok {name} {label}", flush=True)
    if failures:
        print(f"FAILED: {failures}")
        return 1
    print("all plans byte-identical to baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
