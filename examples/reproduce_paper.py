#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Each experiment harness in ``repro.experiments`` reproduces one table or
figure.  This script runs them all and prints the result tables.  By default
it uses the "small" scale (clusters shrunk ~4x, baseline search caps of a few
seconds) so the whole sweep finishes on a laptop; pass ``--scale paper`` for
the paper's cluster sizes and 300-second Metis caps (slow), or ``--only
figure8`` to run a single experiment.

Run with:  python examples/reproduce_paper.py [--scale small|tiny|paper] [--only NAME]
"""

from __future__ import annotations

import argparse
import importlib
import time


EXPERIMENTS = [
    "figure1", "figure2", "figure3", "table1", "figure5", "figure6",
    "figure7", "figure8", "figure9", "figure10", "figure11", "figure12",
    "figure13", "figure14", "table2", "table3", "scalability",
    "reconfiguration", "ablations",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "paper"],
                        help="experiment scale (default: small)")
    parser.add_argument("--only", default=None,
                        help="run a single experiment, e.g. 'figure8'")
    args = parser.parse_args()

    names = [args.only] if args.only else EXPERIMENTS
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(f"unknown experiment {name!r}; "
                             f"choose from {', '.join(EXPERIMENTS)}")
        module = importlib.import_module(f"repro.experiments.{name}")
        start = time.perf_counter()
        table = module.run(args.scale)
        elapsed = time.perf_counter() - start
        print("=" * 88)
        print(f"{name}  ({elapsed:.1f}s at scale={args.scale})")
        print("=" * 88)
        print(table.to_text())
        print()


if __name__ == "__main__":
    main()
