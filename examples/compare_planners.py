#!/usr/bin/env python3
"""Compare Sailor against the prior planners on a heterogeneous cluster.

Reproduces (a small version of) the paper's Figure 8 comparison: OPT-350M on
a mixed A100 + V100 cluster, planned by AMP, FlashFlex, Metis and Sailor.
Each planner's chosen plan is then "deployed" on the reference simulator,
counting plans that would crash with out-of-memory errors first -- exactly
the methodology of section 5.2.

Run with:  python examples/compare_planners.py
"""

from __future__ import annotations

from repro import Objective, TrainingJobSpec, build_environment, get_model
from repro.baselines import get_baseline
from repro.baselines.base import BaselineSearchLimits
from repro.core.planner import SailorPlanner
from repro.core.simulator import ReferenceSimulator
from repro.hardware.topology import ClusterTopology


PLANNERS = ("amp", "flashflex", "metis", "sailor")


def main() -> None:
    job = TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=2048,
                          sequence_length=2048)
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 8,          # 32 A100
        "n1-standard-v100-4": 8,     # 32 V100
    })
    print("Cluster:")
    print(topology.describe())
    env = build_environment(job, topology)
    reference = ReferenceSimulator(env)
    objective = Objective.max_throughput()

    print(f"\n{'planner':<12} {'search (s)':>10} {'OOM plans':>10} "
          f"{'iters/s':>9} {'USD/iter':>9} {'GPUs':>5}  search stats")
    print("-" * 96)
    for name in PLANNERS:
        if name == "sailor":
            result = SailorPlanner(env).plan(job, topology, objective)
        else:
            limits = BaselineSearchLimits(time_limit_s=30.0)
            kwargs = {"limits": limits}
            if name == "metis":
                kwargs["time_limit_s"] = 30.0
            result = get_baseline(name, env, **kwargs).plan(job, topology, objective)
        # The search-cost columns are what Table 3 compares across planners;
        # baselines that do not report DP-search counters show all zeros.
        stats = result.search_stats.describe()
        if not result.found:
            print(f"{name:<12} {result.search_time_s:>10.2f} "
                  f"{result.oom_plans_generated:>10} {'X':>9} {'X':>9} {'-':>5}  "
                  f"{stats}")
            continue
        measured = reference.measure(result.plan)
        print(f"{name:<12} {result.search_time_s:>10.2f} "
              f"{result.oom_plans_generated:>10} "
              f"{measured.throughput_iters_per_s:>9.3f} "
              f"{measured.cost_per_iteration_usd:>9.3f} "
              f"{result.plan.total_gpus:>5}  "
              f"{stats}")

    print("\n(The paper's Figure 8 runs the same comparison at 64-512 GPUs;")
    print(" use repro.experiments.figure8.run('paper') for the full sweep.)")


if __name__ == "__main__":
    main()
