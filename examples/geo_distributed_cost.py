#!/usr/bin/env python3
"""Geo-distributed planning under a budget.

Scenario: A100s are scarce in every single zone, but you can get 32 of them
in each of three zones spread over two regions.  This example shows how the
planner trades throughput against the cost of inter-zone / inter-region
traffic, and how budget and throughput constraints change the chosen plan
(paper sections 4.2.3 and 5.2.3-5.2.4).

Run with:  python examples/geo_distributed_cost.py
"""

from __future__ import annotations

from repro import (
    ClusterTopology,
    Objective,
    SailorPlanner,
    TrainingJobSpec,
    build_environment,
    get_model,
)


ZONES = {
    "us-central1-a": {"a2-highgpu-4g": 8},   # 32 A100
    "us-central1-b": {"a2-highgpu-4g": 8},   # 32 A100 (same region)
    "us-west1-a": {"a2-highgpu-4g": 8},      # 32 A100 (different region)
}


def describe(result, label: str) -> None:
    if not result.found:
        print(f"{label:35s} -> no feasible plan")
        return
    ev = result.evaluation
    zones = ", ".join(result.plan.zones())
    print(f"{label:35s} -> {ev.throughput_iters_per_s:6.3f} iters/s  "
          f"{ev.cost_per_iteration_usd:6.3f} USD/iter  "
          f"{result.plan.total_gpus:3d} GPUs  zones: {zones}")


def main() -> None:
    job = TrainingJobSpec(model=get_model("GPT-Neo-2.7B"),
                          global_batch_size=2048, sequence_length=2048)
    topology = ClusterTopology(nodes=ZONES)
    print("Resource pool:")
    print(topology.describe())
    print()

    env = build_environment(job, topology)
    planner = SailorPlanner(env)

    # 1. Pure throughput: the planner decides whether the extra region is
    #    worth the slow inter-region links.
    describe(planner.plan(job, topology, Objective.max_throughput()),
             "max throughput")

    # 2. Maximum throughput under a budget ceiling per iteration.
    describe(planner.plan(job, topology,
                          Objective.max_throughput(max_cost_per_iteration_usd=3.0)),
             "max throughput, <= 3.0 USD/iter")

    # 3. Minimum cost subject to a throughput floor.
    describe(planner.plan(job, topology,
                          Objective.min_cost(min_throughput_iters_per_s=0.02)),
             "min cost, >= 0.02 iters/s")

    # 4. What happens if only the remote region is available?  (e.g. the
    #    primary region lost capacity)
    remote_only = topology.restricted_to_zones(["us-west1-a"])
    describe(planner.plan(job, remote_only, Objective.max_throughput()),
             "max throughput, us-west1 only")


if __name__ == "__main__":
    main()
