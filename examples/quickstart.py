#!/usr/bin/env python3
"""Quickstart: plan a training job on whatever GPUs are available.

This walks the full Sailor workflow from the paper's Figure 4:

1. describe the training job (model + hyperparameters);
2. describe what resources you *could* get (quotas) and what is actually
   available right now (topology);
3. profile the job and the network (simulated profiler);
4. ask the planner for the best resource allocation + parallelization plan;
5. inspect the plan and the simulator's estimates.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClusterTopology,
    Objective,
    SailorPlanner,
    SailorSimulator,
    TrainingJobSpec,
    build_environment,
    get_model,
)


def main() -> None:
    # 1. The training job: OPT-350M, global batch of 2048 sequences of 2048
    #    tokens, Adam -- the paper's main workload.
    job = TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=2048,
                          sequence_length=2048, optimizer="adam")
    print(f"Training job: {job.model} (batch {job.global_batch_size})")

    # 2. What is available right now: 4 A100 nodes and 8 V100 nodes in one
    #    zone (the situation Figure 1 motivates -- not enough A100s alone).
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 4,          # 16x A100-40GB
        "n1-standard-v100-4": 8,     # 32x V100-16GB
    })
    print("\nAvailable resources:")
    print(topology.describe())

    # 3. Profile the job on every available GPU type and fit network curves.
    env = build_environment(job, topology)

    # 4. Plan for maximum throughput.
    planner = SailorPlanner(env)
    result = planner.plan(job, topology, Objective.max_throughput())
    if not result.found:
        raise SystemExit("no valid plan found for this topology")

    print(f"\nPlanner finished in {result.search_time_s:.2f}s "
          f"({result.candidates_evaluated} candidates, "
          f"{result.oom_plans_generated} OOM plans)")
    print("\nChosen plan:")
    print(result.plan.describe())

    # 5. What the simulator predicts for this plan.
    evaluation = SailorSimulator(env).evaluate(result.plan)
    print(f"\nEstimated iteration time : {evaluation.iteration_time_s:.2f} s")
    print(f"Estimated throughput     : {evaluation.throughput_iters_per_s:.3f} iters/s")
    print(f"Estimated cost           : {evaluation.cost_per_iteration_usd:.3f} USD/iteration")
    print(f"Peak memory per stage    : "
          + ", ".join(f"{m / 2**30:.1f} GiB"
                      for m in evaluation.peak_memory_bytes_per_stage))

    # Compare against using only the A100 pool.
    a100_only = topology.restricted_to_gpu("A100-40")
    homogeneous = planner.plan(job, a100_only, Objective.max_throughput())
    if homogeneous.found:
        speedup = (evaluation.throughput_iters_per_s
                   / homogeneous.evaluation.throughput_iters_per_s)
        print(f"\nUsing the V100s too is {speedup:.2f}x faster than A100-only "
              f"({homogeneous.evaluation.throughput_iters_per_s:.3f} iters/s).")


if __name__ == "__main__":
    main()
