#!/usr/bin/env python3
"""Elastic training on spot capacity.

Scenario: you train OPT-350M on spot V100 nodes whose availability changes
every few minutes (Figure 2 / section 4.4 of the paper).  The Sailor
controller re-plans on every availability change, reconfigures the job
kill-free, and resumes from the latest asynchronous checkpoint after
preemptions.  This example replays a 4-hour spot trace and reports goodput,
time lost to reconfiguration, and rolled-back work.

Run with:  python examples/elastic_spot_training.py
"""

from __future__ import annotations

from repro import (
    AvailabilityTraceGenerator,
    ClusterTopology,
    Objective,
    TrainingJobSpec,
    build_environment,
    get_model,
)
from repro.hardware.availability import AvailabilityTrace
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.session import ElasticTrainingSession


def main() -> None:
    job = TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=2048,
                          sequence_length=2048)
    base = ClusterTopology.homogeneous("n1-standard-v100-4", 8,
                                       zone="us-central1-a")
    env = build_environment(job, base)

    # A 4-hour spot trace: the pool starts full and loses / regains capacity.
    generator = AvailabilityTraceGenerator(seed=42)
    events = generator.spot_preemptions("us-central1-a", "n1-standard-v100-4",
                                        base_nodes=8, duration_s=4 * 3600,
                                        mean_time_between_events_s=1200.0)
    trace = AvailabilityTrace(events=events, duration_s=4 * 3600)

    print("Spot availability (nodes over time):")
    for event in trace.events[:12]:
        print(f"  t={event.time_s / 60:6.1f} min  -> {event.available_nodes} nodes")
    if len(trace.events) > 12:
        print(f"  ... {len(trace.events) - 12} more changes")

    session = ElasticTrainingSession(
        env, job, objective=Objective.max_throughput(),
        checkpoint_config=CheckpointConfig(interval_iterations=25))
    report = session.run(trace, base_topology=base)

    print("\n=== 4-hour elastic session ===")
    print(f"iterations completed      : {report.iterations_completed}")
    print(f"goodput                   : {report.goodput_iters_per_s:.4f} iters/s")
    print(f"reconfigurations          : {report.reconfigurations}")
    print(f"time reconfiguring        : {report.reconfiguration_time_s:.1f} s")
    print(f"time idle (no resources)  : {report.idle_time_s:.1f} s")
    print(f"checkpoint stalls         : {report.checkpoint_stall_s:.1f} s")
    print(f"iterations lost to rollback: {report.iterations_lost_to_rollback}")
    print(f"availability efficiency   : {report.availability_efficiency * 100:.1f}%")

    print("\nSegments (plan changes over time):")
    for segment in report.segments:
        print(f"  {segment.start_s / 60:6.1f}-{segment.end_s / 60:6.1f} min  "
              f"{segment.gpus:3d} GPUs  {segment.iterations_completed:4d} iterations  "
              f"({segment.iteration_time_s:.2f} s/iter)")

    for event in session.controller.events:
        phases = event.breakdown
        print(f"\nReconfiguration at t={event.time_s / 60:.1f} min "
              f"({event.old_gpus} -> {event.new_gpus} GPUs): "
              f"total {phases.total_s:.1f}s "
              f"[plan {phases.planning_s:.2f}, cleanup {phases.cleanup_s:.1f}, "
              f"nccl {phases.nccl_init_s:.1f}]")
        break  # one detailed breakdown is enough for the demo


if __name__ == "__main__":
    main()
