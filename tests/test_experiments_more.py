"""Additional experiment-harness integration checks (heterogeneous, geo,
constraint experiments) at tiny scale."""

import math

import pytest

from repro.experiments import figure8, figure9, figure12, figure13, figure14, scalability, table2


pytestmark = pytest.mark.slow


def rows_for(table, planner):
    return [r for r in table.rows if r["planner"] == planner]


def test_figure8_sailor_beats_het_baselines_and_uses_heterogeneity():
    table = figure8.run("tiny", setups={"50/50": ((16, 16),)},
                        planners=("amp", "flashflex", "sailor"))
    sailor = rows_for(table, "sailor")[0]
    for name in ("amp", "flashflex"):
        row = rows_for(table, name)[0]
        if row["found"]:
            assert sailor["throughput_iters_per_s"] >= \
                row["throughput_iters_per_s"] * 0.95
    assert sailor["oom_plans"] == 0
    # Heterogeneity helps when the A100 pool is this small (takeaway 1).
    a100_only = rows_for(table, "sailor-a100")[0]
    v100_only = rows_for(table, "sailor-v100")[0]
    assert sailor["throughput_iters_per_s"] >= a100_only["throughput_iters_per_s"]
    assert a100_only["throughput_iters_per_s"] > v100_only["throughput_iters_per_s"]


def test_figure9_large_model_baselines_struggle():
    table = figure9.run("tiny", setups={"50/50": ((16, 16),)},
                        planners=("amp", "sailor"))
    sailor = rows_for(table, "sailor")[0]
    amp = rows_for(table, "amp")[0]
    assert sailor["found"] and sailor["oom_plans"] == 0
    # AMP's memory-blind ranking produces OOM plans (or fails) on GPT-Neo.
    assert (not amp["found"]) or amp["oom_plans"] > 0
    if amp["found"]:
        assert sailor["throughput_iters_per_s"] >= amp["throughput_iters_per_s"]


def test_figure12_margin_over_dtfm():
    table = figure12.run("tiny", gpus_per_zone_options=(8,))
    sailor = rows_for(table, "sailor")[0]
    dtfm = rows_for(table, "dtfm")[0]
    assert sailor["throughput_iters_per_s"] > dtfm["throughput_iters_per_s"]
    assert sailor["cost_per_iteration_usd"] < dtfm["cost_per_iteration_usd"]


def test_figure13_constraint_and_cost_ordering():
    table = figure13.run("tiny", min_throughput=0.05,
                         planners=("galvatron", "flashflex", "sailor"))
    sailor = rows_for(table, "sailor")[0]
    assert sailor["found"]
    assert sailor["throughput_iters_per_s"] >= 0.05 * 0.95
    valid_costs = [r["cost_per_iteration_usd"] for r in table.rows
                   if r["found"] and not math.isnan(r["cost_per_iteration_usd"])]
    assert sailor["cost_per_iteration_usd"] <= min(valid_costs) * 1.05


def test_figure14_budget_respected_and_best_throughput():
    table = figure14.run("tiny", max_cost=1.0,
                         planners=("varuna", "amp", "sailor"))
    sailor = rows_for(table, "sailor")[0]
    assert sailor["found"]
    assert sailor["cost_per_iteration_usd"] <= 1.0 * 1.01
    found = [r["throughput_iters_per_s"] for r in table.rows if r["found"]]
    assert sailor["throughput_iters_per_s"] >= max(found) * 0.999


def test_table2_sailor_search_is_bounded():
    table = table2.run("tiny", setups=((32, 32),), planners=("metis", "sailor"))
    sailor = rows_for(table, "sailor")[0]
    assert sailor["found"]
    assert sailor["search_time_s"] < 30.0


def test_scalability_more_gpu_types_cost_more_search_time():
    table = scalability.run("tiny", zone_counts=(1,), type_counts=(1, 2),
                            gpus_per_zone=32, gpus_per_type=32)
    types = {r["setting"]: r["search_time_s"] for r in table.rows
             if r["sweep"] == "gpu_types"}
    assert len(types) == 2
    one_type, two_types = sorted(types.items())
    assert two_types[1] >= one_type[1]
