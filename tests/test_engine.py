"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.runtime.engine import SimulationEngine


def test_events_run_in_time_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(5.0, "b", lambda: order.append("b"))
    engine.schedule(1.0, "a", lambda: order.append("a"))
    engine.schedule(10.0, "c", lambda: order.append("c"))
    processed = engine.run()
    assert processed == 3
    assert order == ["a", "b", "c"]
    assert engine.now == 10.0
    assert engine.pending == 0


def test_ties_run_in_scheduling_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(1.0, "first", lambda: order.append(1))
    engine.schedule(1.0, "second", lambda: order.append(2))
    engine.run()
    assert order == [1, 2]


def test_cancelled_events_do_not_fire():
    engine = SimulationEngine()
    fired = []
    event = engine.schedule(1.0, "x", lambda: fired.append("x"))
    event.cancel()
    engine.schedule(2.0, "y", lambda: fired.append("y"))
    engine.run()
    assert fired == ["y"]


def test_run_until_deadline_advances_clock():
    engine = SimulationEngine()
    fired = []
    engine.schedule(1.0, "a", lambda: fired.append("a"))
    engine.schedule(100.0, "late", lambda: fired.append("late"))
    engine.run(until_s=10.0)
    assert fired == ["a"]
    assert engine.now == 10.0
    assert engine.pending == 1
    engine.run()
    assert fired == ["a", "late"]


def test_events_can_schedule_more_events():
    engine = SimulationEngine()
    seen = []

    def first():
        seen.append(engine.now)
        engine.schedule(2.0, "second", lambda: seen.append(engine.now))

    engine.schedule(1.0, "first", first)
    engine.run()
    assert seen == [1.0, 3.0]


def test_schedule_validation_and_absolute_times():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        engine.schedule(-1.0, "bad", lambda: None)
    engine.schedule(1.0, "a", lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule_at(0.5, "past", lambda: None)
    engine.schedule_at(2.0, "future", lambda: None)
    assert engine.pending == 1


def test_max_events_cap():
    engine = SimulationEngine()
    for i in range(5):
        engine.schedule(float(i), str(i), lambda: None)
    assert engine.run(max_events=2) == 2
    assert engine.pending == 3
