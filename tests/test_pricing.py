"""Unit tests for the price catalog."""

import pytest

from repro.hardware.network import LinkClass
from repro.hardware.pricing import PriceCatalog, default_price_catalog


def test_default_prices_present_for_paper_gpus():
    prices = default_price_catalog()
    for gpu in ("A100-40", "V100-16", "GH200-96"):
        assert prices.gpu_price_per_hour(gpu) > 0


def test_per_second_price_is_hourly_divided():
    prices = default_price_catalog()
    assert prices.gpu_price_per_second("A100-40") == pytest.approx(
        prices.gpu_price_per_hour("A100-40") / 3600.0)


def test_compute_cost_scales_linearly():
    prices = default_price_catalog()
    one = prices.compute_cost({"A100-40": 1}, 3600.0)
    many = prices.compute_cost({"A100-40": 10}, 3600.0)
    longer = prices.compute_cost({"A100-40": 1}, 7200.0)
    assert many == pytest.approx(10 * one)
    assert longer == pytest.approx(2 * one)
    assert one == pytest.approx(prices.gpu_price_per_hour("A100-40"))


def test_compute_cost_mixed_types():
    prices = default_price_catalog()
    total = prices.compute_cost({"A100-40": 2, "V100-16": 4}, 1800.0)
    expected = (2 * prices.gpu_price_per_hour("A100-40")
                + 4 * prices.gpu_price_per_hour("V100-16")) / 2.0
    assert total == pytest.approx(expected)


def test_compute_cost_rejects_negative_inputs():
    prices = default_price_catalog()
    with pytest.raises(ValueError):
        prices.compute_cost({"A100-40": -1}, 10.0)
    with pytest.raises(ValueError):
        prices.compute_cost({"A100-40": 1}, -10.0)


def test_unknown_gpu_price_raises():
    prices = default_price_catalog()
    with pytest.raises(KeyError):
        prices.gpu_price_per_hour("NO-SUCH-GPU")


def test_egress_cost_by_link_class():
    prices = default_price_catalog()
    gib = 1024 ** 3
    free = prices.egress_cost({LinkClass.INTRA_ZONE: 10 * gib})
    inter_zone = prices.egress_cost({LinkClass.INTER_ZONE: 10 * gib})
    inter_region = prices.egress_cost({LinkClass.INTER_REGION: 10 * gib})
    assert free == 0.0
    assert inter_zone == pytest.approx(0.1)
    assert inter_region == pytest.approx(0.8)
    assert inter_region > inter_zone


def test_egress_cost_rejects_negative_bytes():
    prices = default_price_catalog()
    with pytest.raises(ValueError):
        prices.egress_cost({LinkClass.INTER_ZONE: -1})


def test_with_gpu_price_override_returns_copy():
    prices = default_price_catalog()
    cheaper = prices.with_gpu_price("A100-40", 1.0)
    assert cheaper.gpu_price_per_hour("A100-40") == 1.0
    assert prices.gpu_price_per_hour("A100-40") != 1.0
