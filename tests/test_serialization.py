"""Round-trip tests for plan / result serialisation."""

import json

import pytest

from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.core.planner import SailorPlanner
from repro.core.serialization import (
    FORMAT_VERSION,
    evaluation_from_dict,
    evaluation_to_dict,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    result_from_json,
    result_to_json,
)
from repro.models.partition import uniform_partition


def heterogeneous_plan(job):
    partitions = uniform_partition(job.model, 2)
    return ParallelizationPlan(job=job, stages=[
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "us-central1-a"),
                                    StageReplica("a2-highgpu-4g", 2, "us-central1-b")]),
        StageConfig(partitions[1], [StageReplica("n1-standard-v100-4", 2, "us-central1-a"),
                                    StageReplica("n1-standard-v100-4", 2, "us-central1-a")]),
    ], microbatch_size=2)


def test_plan_roundtrip_preserves_structure(opt_job):
    plan = heterogeneous_plan(opt_job)
    restored = plan_from_json(plan_to_json(plan))
    assert restored.pipeline_parallel == plan.pipeline_parallel
    assert restored.data_parallel == plan.data_parallel
    assert restored.microbatch_size == plan.microbatch_size
    assert restored.gpus_by_type() == plan.gpus_by_type()
    assert restored.zones() == plan.zones()
    assert restored.job.global_batch_size == plan.job.global_batch_size
    for original, copy in zip(plan.stages, restored.stages):
        assert [r.tensor_parallel for r in original.replicas] == \
            [r.tensor_parallel for r in copy.replicas]
        assert original.partition.num_layers == copy.partition.num_layers


def test_plan_json_is_stable_and_versioned(opt_job):
    plan = heterogeneous_plan(opt_job)
    document = json.loads(plan_to_json(plan))
    assert document["format_version"] == FORMAT_VERSION
    assert document["job"]["model"] == "OPT-350M"
    # Encoding the same plan twice yields identical text (sorted keys).
    assert plan_to_json(plan) == plan_to_json(plan)


def test_newer_format_version_rejected(opt_job):
    plan = heterogeneous_plan(opt_job)
    document = plan_to_dict(plan)
    document["format_version"] = FORMAT_VERSION + 1
    with pytest.raises(ValueError, match="format version"):
        plan_from_dict(document)


def test_corrupted_plan_fails_validation(opt_job):
    plan = heterogeneous_plan(opt_job)
    document = plan_to_dict(plan)
    document["stages"][0]["replicas"].pop()  # breaks the equal-DP invariant
    with pytest.raises(ValueError):
        plan_from_dict(document)


def test_evaluation_roundtrip(opt_env, opt_job):
    from repro.core.simulator import SailorSimulator

    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 2, 2, 4, 2)
    evaluation = SailorSimulator(opt_env).evaluate(plan)
    restored = evaluation_from_dict(evaluation_to_dict(evaluation))
    assert restored.iteration_time_s == pytest.approx(evaluation.iteration_time_s)
    assert restored.cost_per_iteration_usd == pytest.approx(
        evaluation.cost_per_iteration_usd)
    assert restored.is_valid == evaluation.is_valid
    assert restored.peak_memory_bytes_per_stage == pytest.approx(
        evaluation.peak_memory_bytes_per_stage)


def test_planner_result_roundtrip(opt_env, opt_job, a100_topology):
    result = SailorPlanner(opt_env).plan(opt_job, a100_topology,
                                         Objective.max_throughput())
    restored = result_from_json(result_to_json(result))
    assert restored.found
    assert restored.planner_name == result.planner_name
    assert restored.search_time_s == pytest.approx(result.search_time_s)
    assert restored.plan.total_gpus == result.plan.total_gpus
    assert restored.evaluation.throughput_iters_per_s == pytest.approx(
        result.evaluation.throughput_iters_per_s)


def test_planner_result_search_stats_roundtrip(opt_env, opt_job, a100_topology):
    result = SailorPlanner(opt_env).plan(opt_job, a100_topology,
                                         Objective.max_throughput())
    assert result.search_stats.nodes_explored > 0
    restored = result_from_json(result_to_json(result))
    assert restored.search_stats == result.search_stats


def test_new_enumeration_counters_roundtrip(opt_env, opt_job,
                                            mixed_topology):
    """The PR 10 counters (families_skipped, combine_fused_hits,
    availability_floor_hits) ride the same auto-derived as_dict/from_dict
    path as every other SearchStats field: present in the JSON document,
    exact after a round trip, and visible in ``describe()``."""
    from repro.core.plan import SearchStats

    result = SailorPlanner(opt_env).plan(opt_job, mixed_topology,
                                         Objective.min_cost())
    assert result.search_stats.families_skipped > 0
    text = result_to_json(result)
    document = json.loads(text)
    restored = result_from_json(text)
    for counter in ("families_skipped", "combine_fused_hits",
                    "availability_floor_hits"):
        assert counter in document["search_stats"]
        assert getattr(restored.search_stats, counter) == \
            getattr(result.search_stats, counter)
    # Hand-written values survive the dict round trip exactly, including
    # the CLI stats dump's source (as_dict is what --stats serializes).
    stats = SearchStats(families_skipped=3, combine_fused_hits=7,
                        availability_floor_hits=11)
    assert SearchStats.from_dict(stats.as_dict()) == stats
    described = stats.describe()
    assert "families_skipped=3" in described
    assert "fused_combines=7" in described
    assert "avail_floor_hits=11" in described


def test_result_without_search_stats_decodes_to_zeroes():
    """Documents written before the search_stats block decode cleanly."""
    import json
    from repro.core.serialization import result_from_dict

    data = {"format_version": 1, "planner_name": "sailor",
            "search_time_s": 1.0, "plan": None, "evaluation": None}
    restored = result_from_dict(json.loads(json.dumps(data)))
    assert restored.search_stats.nodes_explored == 0
    assert restored.search_stats.memo_hits == 0


def test_empty_result_roundtrip():
    from repro.core.plan import PlannerResult

    empty = PlannerResult(plan=None, evaluation=None, search_time_s=0.5,
                          planner_name="sailor")
    restored = result_from_json(result_to_json(empty))
    assert not restored.found
    assert restored.search_time_s == 0.5
