"""Tests for the SailorSimulator facade and the reference simulator."""

import pytest

from repro.core.plan import ParallelizationPlan
from repro.core.simulator import ReferenceSimulator, SailorSimulator


@pytest.fixture()
def simulator(opt_env):
    return SailorSimulator(opt_env)


@pytest.fixture()
def reference(opt_env):
    return ReferenceSimulator(opt_env, seed=1)


def plan_for(job, **kwargs):
    defaults = dict(pipeline_parallel=4, data_parallel=2, tensor_parallel=4,
                    microbatch_size=2)
    defaults.update(kwargs)
    return ParallelizationPlan.homogeneous(job, "a2-highgpu-4g", **defaults)


def test_evaluation_fields_consistent(simulator, opt_job):
    plan = plan_for(opt_job)
    evaluation = simulator.evaluate(plan)
    assert evaluation.is_valid
    assert evaluation.oom_stages == []
    assert evaluation.iteration_time_s > 0
    assert evaluation.throughput_iters_per_s == pytest.approx(
        1.0 / evaluation.iteration_time_s)
    assert evaluation.cost_per_iteration_usd == pytest.approx(
        evaluation.compute_cost_usd + evaluation.communication_cost_usd)
    assert len(evaluation.peak_memory_bytes_per_stage) == plan.pipeline_parallel
    assert evaluation.iteration_time_s == pytest.approx(
        evaluation.pipeline_time_s + evaluation.sync_time_s + evaluation.update_time_s)


def test_invalid_plan_flagged(simulator, neo_job):
    plan = ParallelizationPlan.homogeneous(neo_job, "n1-standard-v100-4",
                                           1, 2, 1, 1)
    evaluation = simulator.evaluate(plan)
    assert not evaluation.is_valid
    assert evaluation.oom_stages == [0]
    skipped = simulator.evaluate(plan, check_memory=False)
    assert skipped.is_valid


def test_convenience_helpers(simulator, opt_job):
    plan = plan_for(opt_job)
    assert simulator.throughput(plan) == pytest.approx(
        1.0 / simulator.iteration_time(plan))
    peaks = simulator.peak_memory_gb(plan)
    assert len(peaks) == plan.pipeline_parallel
    assert all(0 < p < 40 for p in peaks)


def test_reference_close_to_analytic_estimate(simulator, reference, opt_job):
    """Sailor's analytic estimate should track the reference within ~15%."""
    plan = plan_for(opt_job)
    estimate = simulator.evaluate(plan)
    measured = reference.measure(plan)
    error = abs(estimate.iteration_time_s - measured.iteration_time_s) \
        / measured.iteration_time_s
    assert error < 0.15
    mem_error = abs(max(estimate.peak_memory_bytes_per_stage)
                    - max(measured.peak_memory_bytes_per_stage)) \
        / max(measured.peak_memory_bytes_per_stage)
    assert mem_error < 0.15


def test_reference_is_deterministic_per_seed(opt_env, opt_job):
    plan = plan_for(opt_job)
    a = ReferenceSimulator(opt_env, seed=5).measure(plan)
    b = ReferenceSimulator(opt_env, seed=5).measure(plan)
    c = ReferenceSimulator(opt_env, seed=6).measure(plan)
    assert a.iteration_time_s == b.iteration_time_s
    assert a.iteration_time_s != c.iteration_time_s


def test_reference_is_independent_of_call_order(opt_env, opt_job):
    """measure() re-seeds from (seed, plan): results never depend on what
    was measured before (estimation-error experiments rely on this)."""
    plan_a = plan_for(opt_job)
    plan_b = plan_for(opt_job, pipeline_parallel=2, tensor_parallel=2,
                      microbatch_size=4)
    reference = ReferenceSimulator(opt_env, seed=5)
    first = reference.measure(plan_a).iteration_time_s
    reference.measure(plan_b)
    reference.measure(plan_b)
    assert reference.measure(plan_a).iteration_time_s == first
    # A fresh instance with the same seed agrees measurement-for-measurement.
    assert ReferenceSimulator(opt_env, seed=5).measure(plan_a).iteration_time_s \
        == first


def test_reference_pipeline_slower_with_fewer_resources(reference, opt_job):
    small = plan_for(opt_job, data_parallel=1)
    large = plan_for(opt_job, data_parallel=4)
    assert reference.measure(large).iteration_time_s < \
        reference.measure(small).iteration_time_s


def test_reference_rejects_bad_overlap(opt_env):
    with pytest.raises(ValueError):
        ReferenceSimulator(opt_env, sync_overlap=1.5)
