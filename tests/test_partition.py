"""Unit tests for layer partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.catalog import get_model
from repro.models.partition import (
    balanced_partition,
    partition_layers,
    uniform_partition,
)


def test_partition_layers_even_and_remainder():
    assert partition_layers(24, 4) == [6, 6, 6, 6]
    assert partition_layers(10, 4) == [3, 3, 2, 2]
    with pytest.raises(ValueError):
        partition_layers(2, 4)
    with pytest.raises(ValueError):
        partition_layers(4, 0)


def test_uniform_partition_covers_model():
    model = get_model("OPT-350M")
    parts = uniform_partition(model, 4)
    assert len(parts) == 4
    assert sum(p.num_layers for p in parts) == model.num_layers
    assert parts[0].has_embedding and not parts[0].has_lm_head
    assert parts[-1].has_lm_head and not parts[-1].has_embedding
    assert parts[0].is_first and parts[-1].is_last
    # Contiguity of layer ranges.
    next_layer = 0
    for part in parts:
        assert part.first_layer == next_layer
        next_layer += part.num_layers


def test_single_stage_holds_everything():
    model = get_model("OPT-350M")
    (stage,) = uniform_partition(model, 1)
    assert stage.has_embedding and stage.has_lm_head
    assert stage.stage_params(model) == model.total_params


def test_stage_params_sum_to_total():
    model = get_model("GPT-Neo-2.7B")
    parts = uniform_partition(model, 8)
    total = sum(p.stage_params(model) for p in parts)
    # The tied embedding is duplicated on the last stage, so the sum exceeds
    # the model size by exactly one vocabulary projection.
    assert total == model.total_params + model.vocab_size * model.hidden_size


def test_balanced_partition_gives_more_layers_to_faster_stages():
    model = get_model("OPT-350M")
    parts = balanced_partition(model, 2, stage_weights=[3.0, 1.0])
    assert parts[0].num_layers > parts[1].num_layers
    assert sum(p.num_layers for p in parts) == model.num_layers


def test_balanced_partition_validation():
    model = get_model("OPT-350M")
    with pytest.raises(ValueError):
        balanced_partition(model, 2, stage_weights=[1.0])
    with pytest.raises(ValueError):
        balanced_partition(model, 2, stage_weights=[1.0, -1.0])


@settings(max_examples=50, deadline=None)
@given(num_stages=st.integers(1, 16))
def test_uniform_partition_property(num_stages):
    """Partitions always cover every layer exactly once, stages >= 1 layer."""
    model = get_model("GPT-Neo-2.7B")
    parts = uniform_partition(model, num_stages)
    assert sum(p.num_layers for p in parts) == model.num_layers
    assert all(p.num_layers >= 1 for p in parts)
    assert sum(p.has_embedding for p in parts) == 1
    assert sum(p.has_lm_head for p in parts) == 1


@settings(max_examples=50, deadline=None)
@given(weights=st.lists(st.floats(0.5, 5.0), min_size=1, max_size=12))
def test_balanced_partition_property(weights):
    """Balanced partitions cover the model for arbitrary positive weights."""
    model = get_model("GPT-Neo-2.7B")
    if len(weights) > model.num_layers:
        return
    parts = balanced_partition(model, len(weights), stage_weights=list(weights))
    assert sum(p.num_layers for p in parts) == model.num_layers
    assert all(p.num_layers >= 1 for p in parts)
