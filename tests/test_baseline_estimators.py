"""Unit tests for the configurable baseline estimator."""

import pytest

from repro.baselines.estimators import (
    BaselineEstimator,
    EstimatorFlags,
    IgnoreMemoryEstimator,
    TheoreticalFlopsEstimator,
    UniformStageEstimator,
)
from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.core.simulator import MemoryEstimator, TimingEstimator
from repro.models.partition import uniform_partition


def homogeneous(job, **kwargs):
    defaults = dict(pipeline_parallel=4, data_parallel=2, tensor_parallel=4,
                    microbatch_size=2)
    defaults.update(kwargs)
    return ParallelizationPlan.homogeneous(job, "a2-highgpu-4g", **defaults)


def mixed_plan(job):
    partitions = uniform_partition(job.model, 2)
    a100 = StageReplica("a2-highgpu-4g", 4, "us-central1-a")
    v100 = StageReplica("n1-standard-v100-4", 4, "us-central1-a")
    return ParallelizationPlan(job=job, stages=[
        StageConfig(partitions[0], [a100, a100]),
        StageConfig(partitions[1], [v100, v100]),
    ], microbatch_size=2)


def test_ignore_memory_estimator_accepts_everything(opt_env, neo_job):
    estimator = IgnoreMemoryEstimator(opt_env)
    oversized = ParallelizationPlan.homogeneous(neo_job, "n1-standard-v100-4",
                                                1, 2, 1, 1)
    assert estimator.estimate_peak_memory(oversized) is None
    assert estimator.plan_fits(oversized)
    # The accurate model disagrees.
    assert not MemoryEstimator(opt_env).plan_fits(oversized)


def test_uniform_stage_estimator_underestimates_first_stage(opt_env, opt_job):
    plan = homogeneous(opt_job)
    uniform = UniformStageEstimator(opt_env).estimate_peak_memory(plan)
    accurate = MemoryEstimator(opt_env).stage_peaks(plan)
    assert uniform is not None
    assert max(uniform) < max(accurate)


def test_theoretical_flops_estimator_is_too_optimistic(opt_env, opt_job):
    plan = homogeneous(opt_job)
    flops_time = TheoreticalFlopsEstimator(opt_env).estimate_iteration_time(plan)
    accurate_time = TimingEstimator(opt_env).iteration_time(plan)
    assert flops_time < accurate_time


def test_straggler_oblivious_estimator_ignores_slow_gpus(opt_env, opt_job):
    plan = mixed_plan(opt_job)
    aware = BaselineEstimator(opt_env, EstimatorFlags(models_stragglers=True))
    oblivious = BaselineEstimator(opt_env, EstimatorFlags(models_stragglers=False))
    assert oblivious.estimate_iteration_time(plan) < \
        aware.estimate_iteration_time(plan)


def test_skipping_lm_head_underestimates_last_stage(opt_env, opt_job):
    plan = homogeneous(opt_job)
    with_head = BaselineEstimator(opt_env, EstimatorFlags())
    without_head = BaselineEstimator(
        opt_env, EstimatorFlags(models_embedding_and_head=False))
    last = plan.stages[-1]
    assert without_head.stage_time(plan, last) < with_head.stage_time(plan, last)
    assert without_head.estimate_iteration_time(plan) < \
        with_head.estimate_iteration_time(plan)


def test_optimizer_state_flag_changes_memory(opt_env, opt_job):
    plan = homogeneous(opt_job)
    with_opt = BaselineEstimator(opt_env, EstimatorFlags())
    without_opt = BaselineEstimator(
        opt_env, EstimatorFlags(include_optimizer_state=False))
    assert max(without_opt.estimate_peak_memory(plan)) < \
        max(with_opt.estimate_peak_memory(plan))


def test_p2p_and_sync_flags(opt_env, opt_job):
    plan = homogeneous(opt_job)
    base = BaselineEstimator(opt_env, EstimatorFlags())
    no_comm = BaselineEstimator(opt_env, EstimatorFlags(
        models_p2p_communication=False, models_dp_sync=False))
    assert no_comm.estimate_iteration_time(plan) < \
        base.estimate_iteration_time(plan)
    assert no_comm.sync_time(plan, plan.stages[0]) == 0.0
    assert no_comm.p2p_time(plan, plan.stages[0].replicas[0],
                            plan.stages[1].replicas[0]) == 0.0


def test_estimate_throughput_inverse_of_time(opt_env, opt_job):
    plan = homogeneous(opt_job)
    estimator = BaselineEstimator(opt_env, EstimatorFlags())
    assert estimator.estimate_throughput(plan) == pytest.approx(
        1.0 / estimator.estimate_iteration_time(plan))
