"""Integration tests for the Sailor planner."""

import pytest

from repro.core.heuristics import HeuristicConfig
from repro.core.objectives import Objective
from repro.core.planner import PlannerConfig, SailorPlanner
from repro.core.simulator import MemoryEstimator, SailorSimulator
from repro.hardware.topology import ClusterTopology


@pytest.fixture(scope="module")
def planner(opt_env):
    return SailorPlanner(opt_env)


def test_homogeneous_plan_found_and_valid(planner, opt_job, a100_topology):
    result = planner.plan(opt_job, a100_topology, Objective.max_throughput())
    assert result.found
    assert result.oom_plans_generated == 0
    assert result.search_time_s < 30.0
    plan = result.plan
    assert plan.total_gpus <= a100_topology.total_gpus()
    assert plan.resource_allocation().fits_within(a100_topology)
    assert MemoryEstimator(planner.env).plan_fits(plan)
    # The evaluation attached to the result matches a fresh evaluation.
    fresh = SailorSimulator(planner.env).evaluate(plan)
    assert fresh.throughput_iters_per_s == pytest.approx(
        result.evaluation.throughput_iters_per_s, rel=1e-6)


def test_heterogeneous_plan_uses_both_gpu_types_when_scarce(planner, opt_job,
                                                            mixed_topology):
    result = planner.plan(opt_job, mixed_topology, Objective.max_throughput())
    assert result.found
    gpus = result.plan.gpus_by_type()
    assert "A100-40" in gpus
    # With only 16 A100s available, adding V100s improves throughput, so the
    # planner should use them (paper takeaway 1).
    assert gpus.get("V100-16", 0) > 0

    a100_only = mixed_topology.restricted_to_gpu("A100-40")
    homo = planner.plan(opt_job, a100_only, Objective.max_throughput())
    assert result.evaluation.throughput_iters_per_s >= \
        homo.evaluation.throughput_iters_per_s


def test_planner_respects_budget_constraint(planner, opt_job, mixed_topology):
    unconstrained = planner.plan(opt_job, mixed_topology,
                                 Objective.max_throughput())
    budget = unconstrained.evaluation.cost_per_iteration_usd * 0.6
    constrained = planner.plan(
        opt_job, mixed_topology,
        Objective.max_throughput(max_cost_per_iteration_usd=budget))
    assert constrained.found
    assert constrained.evaluation.cost_per_iteration_usd <= budget * 1.001
    assert constrained.evaluation.throughput_iters_per_s <= \
        unconstrained.evaluation.throughput_iters_per_s + 1e-9


def test_planner_min_cost_objective_cheaper_than_max_throughput(
        planner, opt_job, mixed_topology):
    fast = planner.plan(opt_job, mixed_topology, Objective.max_throughput())
    cheap = planner.plan(opt_job, mixed_topology, Objective.min_cost())
    assert cheap.found
    assert cheap.evaluation.cost_per_iteration_usd <= \
        fast.evaluation.cost_per_iteration_usd + 1e-9


def test_planner_min_cost_with_throughput_floor(planner, opt_job, mixed_topology):
    floor = 0.05
    result = planner.plan(opt_job, mixed_topology,
                          Objective.min_cost(min_throughput_iters_per_s=floor))
    assert result.found
    assert result.evaluation.throughput_iters_per_s >= floor


def test_planner_handles_empty_topology(planner, opt_job):
    empty = ClusterTopology()
    result = planner.plan(opt_job, empty, Objective.max_throughput())
    assert not result.found
    assert result.plan is None


def test_planner_infeasible_constraint_returns_nothing(planner, opt_job,
                                                       mixed_topology):
    impossible = Objective.max_throughput(max_cost_per_iteration_usd=1e-6)
    result = planner.plan(opt_job, mixed_topology, impossible)
    assert not result.found


def test_geo_distributed_plan_stays_in_one_region_when_enough_capacity(
        opt_env_geo, opt_job, geo_topology_2regions):
    planner = SailorPlanner(opt_env_geo)
    result = planner.plan(opt_job, geo_topology_2regions,
                          Objective.max_throughput())
    assert result.found
    zones = result.plan.zones()
    regions = {z.rsplit("-", 1)[0] for z in zones}
    # H5/H6: data parallel groups stay within a region; with ample capacity in
    # us-central1 the whole plan should stay there.
    assert len(regions) <= 2
    allocation = result.plan.resource_allocation()
    assert allocation.fits_within(geo_topology_2regions)


def test_time_limit_is_honoured(opt_env, opt_job, mixed_topology):
    config = PlannerConfig(time_limit_s=0.05)
    planner = SailorPlanner(opt_env, config=config)
    result = planner.plan(opt_job, mixed_topology, Objective.max_throughput())
    assert result.search_time_s < 5.0


def test_disabling_h2_can_generate_oom_candidates(neo_env, neo_job,
                                                  mixed_topology):
    heuristics = HeuristicConfig(prune_oom_early=False)
    planner = SailorPlanner(neo_env, config=PlannerConfig(heuristics=heuristics,
                                                          time_limit_s=20.0))
    result = planner.plan(neo_job, mixed_topology, Objective.max_throughput())
    default_planner = SailorPlanner(neo_env,
                                    config=PlannerConfig(time_limit_s=20.0))
    default_result = default_planner.plan(neo_job, mixed_topology,
                                          Objective.max_throughput())
    assert default_result.oom_plans_generated == 0
    # Without H2 the planner may propose plans that the simulator then rejects.
    assert result.oom_plans_generated >= default_result.oom_plans_generated
