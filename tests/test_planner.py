"""Integration tests for the Sailor planner."""

import pytest

from repro.core.heuristics import HeuristicConfig
from repro.core.objectives import Objective
from repro.core.planner import ParallelPlanner, PlannerConfig, SailorPlanner
from repro.core.serialization import plan_to_json
from repro.core.simulator import MemoryEstimator, SailorSimulator
from repro.hardware.topology import ClusterTopology


@pytest.fixture(scope="module")
def planner(opt_env):
    return SailorPlanner(opt_env)


def test_homogeneous_plan_found_and_valid(planner, opt_job, a100_topology):
    result = planner.plan(opt_job, a100_topology, Objective.max_throughput())
    assert result.found
    assert result.oom_plans_generated == 0
    assert result.search_time_s < 30.0
    plan = result.plan
    assert plan.total_gpus <= a100_topology.total_gpus()
    assert plan.resource_allocation().fits_within(a100_topology)
    assert MemoryEstimator(planner.env).plan_fits(plan)
    # The evaluation attached to the result matches a fresh evaluation.
    fresh = SailorSimulator(planner.env).evaluate(plan)
    assert fresh.throughput_iters_per_s == pytest.approx(
        result.evaluation.throughput_iters_per_s, rel=1e-6)


def test_heterogeneous_plan_uses_both_gpu_types_when_scarce(planner, opt_job,
                                                            mixed_topology):
    result = planner.plan(opt_job, mixed_topology, Objective.max_throughput())
    assert result.found
    gpus = result.plan.gpus_by_type()
    assert "A100-40" in gpus
    # With only 16 A100s available, adding V100s improves throughput, so the
    # planner should use them (paper takeaway 1).
    assert gpus.get("V100-16", 0) > 0

    a100_only = mixed_topology.restricted_to_gpu("A100-40")
    homo = planner.plan(opt_job, a100_only, Objective.max_throughput())
    assert result.evaluation.throughput_iters_per_s >= \
        homo.evaluation.throughput_iters_per_s


def test_planner_respects_budget_constraint(planner, opt_job, mixed_topology):
    unconstrained = planner.plan(opt_job, mixed_topology,
                                 Objective.max_throughput())
    budget = unconstrained.evaluation.cost_per_iteration_usd * 0.6
    constrained = planner.plan(
        opt_job, mixed_topology,
        Objective.max_throughput(max_cost_per_iteration_usd=budget))
    assert constrained.found
    assert constrained.evaluation.cost_per_iteration_usd <= budget * 1.001
    assert constrained.evaluation.throughput_iters_per_s <= \
        unconstrained.evaluation.throughput_iters_per_s + 1e-9


def test_planner_min_cost_objective_cheaper_than_max_throughput(
        planner, opt_job, mixed_topology):
    fast = planner.plan(opt_job, mixed_topology, Objective.max_throughput())
    cheap = planner.plan(opt_job, mixed_topology, Objective.min_cost())
    assert cheap.found
    assert cheap.evaluation.cost_per_iteration_usd <= \
        fast.evaluation.cost_per_iteration_usd + 1e-9


def test_planner_min_cost_with_throughput_floor(planner, opt_job, mixed_topology):
    floor = 0.05
    result = planner.plan(opt_job, mixed_topology,
                          Objective.min_cost(min_throughput_iters_per_s=floor))
    assert result.found
    assert result.evaluation.throughput_iters_per_s >= floor


def test_planner_handles_empty_topology(planner, opt_job):
    empty = ClusterTopology()
    result = planner.plan(opt_job, empty, Objective.max_throughput())
    assert not result.found
    assert result.plan is None


def test_planner_infeasible_constraint_returns_nothing(planner, opt_job,
                                                       mixed_topology):
    impossible = Objective.max_throughput(max_cost_per_iteration_usd=1e-6)
    result = planner.plan(opt_job, mixed_topology, impossible)
    assert not result.found


def test_geo_distributed_plan_stays_in_one_region_when_enough_capacity(
        opt_env_geo, opt_job, geo_topology_2regions):
    planner = SailorPlanner(opt_env_geo)
    result = planner.plan(opt_job, geo_topology_2regions,
                          Objective.max_throughput())
    assert result.found
    zones = result.plan.zones()
    regions = {z.rsplit("-", 1)[0] for z in zones}
    # H5/H6: data parallel groups stay within a region; with ample capacity in
    # us-central1 the whole plan should stay there.
    assert len(regions) <= 2
    allocation = result.plan.resource_allocation()
    assert allocation.fits_within(geo_topology_2regions)


def test_time_limit_is_honoured(opt_env, opt_job, mixed_topology):
    config = PlannerConfig(time_limit_s=0.05)
    planner = SailorPlanner(opt_env, config=config)
    result = planner.plan(opt_job, mixed_topology, Objective.max_throughput())
    assert result.search_time_s < 5.0


def test_search_stats_are_populated(planner, opt_job, mixed_topology):
    result = planner.plan(opt_job, mixed_topology, Objective.max_throughput())
    stats = result.search_stats
    assert stats.nodes_explored > 0  # engine layer states count as nodes
    assert stats.memo_hits > 0       # engine child dedup counts as memo reuse
    assert stats.cache_hits > 0


def test_budget_search_stats_report_pruning(planner, opt_job, mixed_topology):
    """Binding budgets run the straggler-approximation recursion, which is
    where branch-and-bound still operates (unconstrained solves are answered
    by the layered resource-state engine, which has nothing to prune)."""
    unconstrained = planner.plan(opt_job, mixed_topology,
                                 Objective.max_throughput())
    budget = unconstrained.evaluation.cost_per_iteration_usd * 0.6
    result = planner.plan(
        opt_job, mixed_topology,
        Objective.max_throughput(max_cost_per_iteration_usd=budget))
    stats = result.search_stats
    assert stats.nodes_explored > 0
    assert stats.memo_hits > 0
    assert stats.pruned_branches > 0  # B&B must actually cut budget branches


def test_budget_search_stats_report_suffix_certificates(planner, opt_job,
                                                        mixed_topology):
    """The straggler-certificate win must be observable, not inferred from
    wall time: a binding budget search reports both the suffix resolutions
    it performed and the ones its certificates avoided, and the counters
    survive the stats round trip (parallel-driver merge path)."""
    from repro.core.plan import SearchStats

    unconstrained = planner.plan(opt_job, mixed_topology,
                                 Objective.max_throughput())
    budget = unconstrained.evaluation.cost_per_iteration_usd * 0.6
    result = planner.plan(
        opt_job, mixed_topology,
        Objective.max_throughput(max_cost_per_iteration_usd=budget))
    stats = result.search_stats
    assert stats.suffix_iterations > 0
    assert stats.suffix_certified > 0
    encoded = stats.as_dict()
    assert encoded["suffix_iterations"] == stats.suffix_iterations
    assert encoded["suffix_certified"] == stats.suffix_certified
    decoded = SearchStats.from_dict(encoded)
    assert decoded.suffix_iterations == stats.suffix_iterations
    assert decoded.suffix_certified == stats.suffix_certified
    assert "suffix_certified=" in stats.describe()

    # Unconstrained searches never enter the straggler loop.
    assert unconstrained.search_stats.suffix_iterations == 0
    assert unconstrained.search_stats.suffix_certified == 0


def test_h3_early_stop_ignores_infeasible_candidates(opt_env, opt_job,
                                                     mixed_topology):
    """Regression: an infeasible (constraint-violating) candidate's score
    must not raise the H3 early-stop bar.  With the bug, high-dp candidates
    rejected by a max_gpus cap could stop a branch before its best *feasible*
    plan was reached; the fixed search matches the exhaustive one."""
    for max_gpus in (8, 12):
        objective = Objective.max_throughput(max_gpus=max_gpus)
        fixed = SailorPlanner(opt_env).plan(opt_job, mixed_topology, objective)
        exhaustive = SailorPlanner(opt_env, config=PlannerConfig(
            heuristics=HeuristicConfig(ordered_data_parallel=False)),
        ).plan(opt_job, mixed_topology, objective)
        assert fixed.found and exhaustive.found
        assert fixed.plan.total_gpus <= max_gpus
        assert fixed.evaluation.throughput_iters_per_s == pytest.approx(
            exhaustive.evaluation.throughput_iters_per_s, rel=1e-9)


def test_parallel_planner_matches_serial(opt_env, opt_job, mixed_topology):
    objective = Objective.max_throughput()
    serial = SailorPlanner(opt_env).plan(opt_job, mixed_topology, objective)
    parallel = ParallelPlanner(opt_env, max_workers=2).plan(
        opt_job, mixed_topology, objective)
    assert parallel.found
    assert plan_to_json(parallel.plan) == plan_to_json(serial.plan)
    assert parallel.candidates_evaluated == serial.candidates_evaluated
    assert parallel.search_stats.nodes_explored == \
        serial.search_stats.nodes_explored
    assert "parallel" in parallel.notes


def test_parallel_workers_config_delegates(opt_env, opt_job, mixed_topology):
    objective = Objective.max_throughput()
    serial = SailorPlanner(opt_env).plan(opt_job, mixed_topology, objective)
    via_config = SailorPlanner(opt_env, config=PlannerConfig(
        parallel_workers=2)).plan(opt_job, mixed_topology, objective)
    assert via_config.found
    assert plan_to_json(via_config.plan) == plan_to_json(serial.plan)


def test_shared_memory_worker_init_roundtrip(opt_env, opt_job, mixed_topology):
    """_init_worker_shm must rebuild the exact worker state _init_worker
    builds from the same blob (the driver's shared-memory fast path)."""
    import pickle
    from multiprocessing import shared_memory

    from repro.core.heuristics import consolidate_zones
    from repro.core.planner import _WORKER_STATE, _init_worker_shm

    config = PlannerConfig()
    consolidated = consolidate_zones(mixed_topology, config.heuristics)
    resources = SailorPlanner._resource_map(consolidated.topology)
    blob = pickle.dumps((opt_env, opt_job, Objective.max_throughput(), config,
                         consolidated, resources),
                        protocol=pickle.HIGHEST_PROTOCOL)
    segment = shared_memory.SharedMemory(create=True, size=len(blob))
    try:
        segment.buf[:len(blob)] = blob
        _init_worker_shm(segment.name, len(blob))
        assert set(_WORKER_STATE) == {"planner", "job", "objective",
                                      "consolidated", "resources", "context"}
        assert _WORKER_STATE["resources"] == resources
        _WORKER_STATE.clear()
    finally:
        segment.close()
        segment.unlink()


class _RecordingSharedMemory:
    """Wraps SharedMemory construction to record create-path segments."""

    def __init__(self, real_cls, created: list):
        self._real_cls = real_cls
        self._created = created

    def __call__(self, *args, **kwargs):
        segment = self._real_cls(*args, **kwargs)
        if kwargs.get("create"):
            self._created.append(segment)
            segment.test_unlinked = False
            real_unlink = segment.unlink

            def unlink():
                segment.test_unlinked = True
                real_unlink()

            segment.unlink = unlink
        return segment


@pytest.mark.parametrize("failure", [RuntimeError, KeyboardInterrupt])
def test_failing_branch_does_not_leak_shm_segment(opt_env, opt_job,
                                                  mixed_topology, monkeypatch,
                                                  failure):
    """Regression (lifecycle audit): a worker raising mid-branch -- or the
    pool dying on KeyboardInterrupt -- must still close+unlink the driver's
    shared-memory segment.  The pool is replaced by a stub whose futures
    raise, standing in for the re-raised worker exception.  Genuine worker
    exceptions are exactly the failures the fault-tolerant gather must NOT
    absorb: they propagate, unlike a crashed or wedged worker."""
    import repro.core.planner as planner_mod

    created: list = []
    monkeypatch.setattr(
        planner_mod.shared_memory, "SharedMemory",
        _RecordingSharedMemory(planner_mod.shared_memory.SharedMemory,
                               created))

    class ExplodingFuture:
        def result(self, timeout=None):
            raise failure("branch failed")

    class ExplodingPool:
        def __init__(self, *args, **kwargs):
            pass

        def submit(self, *args, **kwargs):
            return ExplodingFuture()

        def shutdown(self, *args, **kwargs):
            pass

    monkeypatch.setattr(planner_mod, "ProcessPoolExecutor", ExplodingPool)
    planner = ParallelPlanner(opt_env, max_workers=2)
    with pytest.raises(failure):
        planner.plan(opt_job, mixed_topology, Objective.max_throughput())
    assert created, "the shm fast path was not exercised"
    for segment in created:
        assert segment.test_unlinked  # closed *and* unlinked on the way out
    # The segment is really gone from /dev/shm: re-attach must fail.
    from multiprocessing import shared_memory as real_shared_memory
    for segment in created:
        with pytest.raises(FileNotFoundError):
            real_shared_memory.SharedMemory(name=segment.name)


def test_initargs_fallback_matches_shm_path(opt_env, opt_job, mixed_topology,
                                            monkeypatch):
    """The initargs-bytes fallback (no shared memory available) must produce
    byte-identical plans and identical search work to the shm fast path."""
    import repro.core.planner as planner_mod

    objective = Objective.max_throughput()
    via_shm = ParallelPlanner(opt_env, max_workers=2).plan(
        opt_job, mixed_topology, objective)

    def no_shm(*args, **kwargs):
        raise OSError("shared memory unavailable")

    monkeypatch.setattr(planner_mod.shared_memory, "SharedMemory", no_shm)
    via_initargs = ParallelPlanner(opt_env, max_workers=2).plan(
        opt_job, mixed_topology, objective)
    assert via_initargs.found
    assert plan_to_json(via_initargs.plan) == plan_to_json(via_shm.plan)
    assert via_initargs.candidates_evaluated == via_shm.candidates_evaluated
    assert via_initargs.search_stats.nodes_explored == \
        via_shm.search_stats.nodes_explored


def test_layer_cache_and_batched_threading_do_not_change_the_chosen_plan(
        opt_env, opt_job, mixed_topology):
    """End-to-end guarantee behind the PR's speedups: sharing forward
    layers across candidates and batching the budget threading return
    byte-identical plans (engine forced on so both paths actually run)."""
    from repro.core.dp_solver import DPSolverConfig

    unconstrained = SailorPlanner(opt_env).plan(opt_job, mixed_topology,
                                                Objective.max_throughput())
    budget = unconstrained.evaluation.cost_per_iteration_usd * 0.6
    for objective in (Objective.max_throughput(),
                      Objective.max_throughput(
                          max_cost_per_iteration_usd=budget),
                      Objective.min_cost()):
        reference = None
        for dp_config in (
                DPSolverConfig(engine_min_states=0),
                DPSolverConfig(engine_min_states=0, enable_layer_cache=False),
                DPSolverConfig(engine_min_states=0,
                               batched_budget_threading=False),
                DPSolverConfig(engine_min_states=0,
                               enable_straggler_bound=False),
                DPSolverConfig(engine_min_states=0,
                               engine_seeded_straggler=False),
                DPSolverConfig(engine_min_states=0, shared_backward=False),
                DPSolverConfig(engine_min_states=0,
                               shared_backward_argmin=False),
                DPSolverConfig(engine_min_states=0,
                               shared_backward_density=1.0),  # force CSR
                DPSolverConfig(engine_min_states=0,
                               batched_layer_resolve=False),
                DPSolverConfig(engine_min_states=0, fused_combine=False),
                DPSolverConfig(engine_min_states_budget=0),  # budget -> engine
                DPSolverConfig(),  # adaptive dispatch (scalar certificates)
                DPSolverConfig(enable_pruning=False),
        ):
            result = SailorPlanner(opt_env, config=PlannerConfig(
                dp_config=dp_config)).plan(opt_job, mixed_topology, objective)
            assert result.found
            encoded = plan_to_json(result.plan)
            if reference is None:
                reference = encoded
            else:
                assert encoded == reference
    # The default config's cache actually fires on this topology.
    result = SailorPlanner(opt_env, config=PlannerConfig(
        dp_config=DPSolverConfig(engine_min_states=0))).plan(
        opt_job, mixed_topology, Objective.max_throughput())
    assert result.search_stats.layer_cache_hits > 0


def test_parallel_time_limit_is_global(opt_env, opt_job, mixed_topology):
    """time_limit_s bounds the whole parallel call, not each branch."""
    config = PlannerConfig(time_limit_s=0.05, parallel_workers=2)
    result = SailorPlanner(opt_env, config=config).plan(
        opt_job, mixed_topology, Objective.max_throughput())
    # Generous ceiling: far below branches x limit, which a per-branch
    # deadline reset would allow.
    assert result.search_time_s < 5.0


def test_solver_rejects_mismatched_context_goal(opt_env, opt_job):
    from repro.core.dp_solver import DPSolver
    from repro.core.objectives import OptimizationGoal
    from repro.core.search_cache import PlannerSearchContext
    from repro.models.partition import uniform_partition

    context = PlannerSearchContext(opt_env, opt_job)  # MAX_THROUGHPUT
    with pytest.raises(ValueError):
        DPSolver(env=opt_env, job=opt_job,
                 partitions=uniform_partition(opt_job.model, 2),
                 tp_options_per_stage=[{}, {}], microbatch_size=2,
                 data_parallel=2, num_microbatches=4,
                 goal=OptimizationGoal.MIN_COST, context=context)


def test_pruning_does_not_change_the_chosen_plan(opt_env, opt_job,
                                                 mixed_topology):
    """End-to-end guarantee behind the benchmark claim: branch-and-bound
    returns a byte-identical plan."""
    from repro.core.dp_solver import DPSolverConfig

    objective = Objective.max_throughput()
    pruned = SailorPlanner(opt_env).plan(opt_job, mixed_topology, objective)
    exhaustive = SailorPlanner(opt_env, config=PlannerConfig(
        dp_config=DPSolverConfig(enable_pruning=False)),
    ).plan(opt_job, mixed_topology, objective)
    assert pruned.found and exhaustive.found
    assert plan_to_json(pruned.plan) == plan_to_json(exhaustive.plan)
    assert exhaustive.search_stats.pruned_branches == 0
    assert pruned.search_stats.nodes_explored <= \
        exhaustive.search_stats.nodes_explored


def test_candidate_ordering_preserves_plans_and_bookkeeping(opt_env, opt_job,
                                                            mixed_topology):
    """Cost-bound-driven candidate scheduling must be observability-only:
    the chosen plan *and* its evaluation are byte-identical with
    ``candidate_ordering`` on/off, composed with the incumbent gate on/off,
    across objectives; the kill decision is gate-independent (surviving
    candidates' bookkeeping replays exactly), kills actually fire when
    armed, and the toggle disarms under ``enable_pruning=False``."""
    from repro.core.dp_solver import DPSolverConfig

    unconstrained = SailorPlanner(opt_env).plan(opt_job, mixed_topology,
                                                Objective.max_throughput())
    budget = unconstrained.evaluation.cost_per_iteration_usd * 0.6
    killed_total = 0
    for objective in (Objective.max_throughput(),
                      Objective.min_cost(),
                      Objective.max_throughput(
                          max_cost_per_iteration_usd=budget)):
        reference = None
        evaluated = {}
        for ordering in (True, False):
            for gate in (True, False):
                result = SailorPlanner(opt_env, config=PlannerConfig(
                    candidate_ordering=ordering,
                    enable_candidate_gate=gate)).plan(
                    opt_job, mixed_topology, objective)
                assert result.found
                snapshot = (plan_to_json(result.plan),
                            result.evaluation.iteration_time_s,
                            result.evaluation.cost_per_iteration_usd)
                if reference is None:
                    reference = snapshot
                else:
                    assert snapshot == reference
                evaluated[(ordering, gate)] = result.candidates_evaluated
                killed = result.search_stats.candidates_killed_unevaluated
                if ordering:
                    killed_total += killed
                else:
                    assert killed == 0
        # Tail kills depend only on the branch incumbent's evolution, which
        # the gate never perturbs -- so the surviving candidate count is
        # identical gate on/off (within one ordering setting).
        assert evaluated[(True, True)] == evaluated[(True, False)]
        assert evaluated[(False, True)] == evaluated[(False, False)]
    assert killed_total > 0
    # Without the pruned DP there is no bound machinery to trust: the
    # exhaustive reference must stay exhaustive even with the toggle on.
    exhaustive = SailorPlanner(opt_env, config=PlannerConfig(
        candidate_ordering=True,
        dp_config=DPSolverConfig(enable_pruning=False))).plan(
        opt_job, mixed_topology, Objective.max_throughput())
    assert exhaustive.search_stats.candidates_killed_unevaluated == 0
    assert plan_to_json(exhaustive.plan) == plan_to_json(unconstrained.plan)


def test_family_memo_and_availability_floors_preserve_plans(opt_env, opt_job,
                                                            mixed_topology):
    """The dominated-family interval memo and the availability-aware tail
    floors must be latency-only: the chosen plan *and* its evaluation are
    byte-identical with each toggle on/off (composed with each other),
    across objectives; family skips actually fire when armed, the gate
    disarms under ``enable_pruning=False``, and the parallel driver's
    replay takes the exact skip decisions the serial loop takes."""
    from repro.core.dp_solver import DPSolverConfig

    unconstrained = SailorPlanner(opt_env).plan(opt_job, mixed_topology,
                                                Objective.max_throughput())
    budget = unconstrained.evaluation.cost_per_iteration_usd * 0.6
    skipped_total = 0
    for objective in (Objective.max_throughput(),
                      Objective.min_cost(),
                      Objective.max_throughput(
                          max_cost_per_iteration_usd=budget)):
        reference = None
        for family in (True, False):
            for avail in (True, False):
                result = SailorPlanner(opt_env, config=PlannerConfig(
                    family_interval_memo=family,
                    availability_aware_floors=avail)).plan(
                    opt_job, mixed_topology, objective)
                assert result.found
                snapshot = (plan_to_json(result.plan),
                            result.evaluation.iteration_time_s,
                            result.evaluation.cost_per_iteration_usd)
                if reference is None:
                    reference = snapshot
                else:
                    assert snapshot == reference
                skipped = result.search_stats.families_skipped
                if family:
                    skipped_total += skipped
                else:
                    assert skipped == 0
    assert skipped_total > 0
    # Without the pruned DP there is no bound machinery to trust: the
    # family gate must stay disarmed even with the toggle on.
    exhaustive = SailorPlanner(opt_env, config=PlannerConfig(
        family_interval_memo=True,
        dp_config=DPSolverConfig(enable_pruning=False))).plan(
        opt_job, mixed_topology, Objective.max_throughput())
    assert exhaustive.search_stats.families_skipped == 0
    assert plan_to_json(exhaustive.plan) == plan_to_json(unconstrained.plan)
    # The parallel driver replays the serial skip decisions from worker
    # outcomes (workers price families but never skip): same plan, same
    # skip count.
    serial = SailorPlanner(opt_env).plan(opt_job, mixed_topology,
                                         Objective.min_cost())
    parallel = ParallelPlanner(opt_env, max_workers=2).plan(
        opt_job, mixed_topology, Objective.min_cost())
    assert plan_to_json(parallel.plan) == plan_to_json(serial.plan)
    assert parallel.search_stats.families_skipped == \
        serial.search_stats.families_skipped


def test_fused_combine_preserves_plans_when_forced(opt_env, opt_job,
                                                   mixed_topology,
                                                   monkeypatch):
    """Force the fused combine onto every layer (dispatch threshold 1,
    engine always on): plans, evaluations, and node counts are
    bit-identical to the reference chain on both the dense and the CSR
    argmin routes, and the fused kernel demonstrably runs."""
    import repro.core.resource_state as rs
    from repro.core.dp_solver import DPSolverConfig

    monkeypatch.setattr(rs, "FUSED_COMBINE_MIN_ELEMS", 1)
    fused_hits = 0
    for objective in (Objective.max_throughput(), Objective.min_cost()):
        reference = None
        for dp_config in (
                DPSolverConfig(engine_min_states=0, fused_combine=False),
                DPSolverConfig(engine_min_states=0),
                DPSolverConfig(engine_min_states=0,
                               shared_backward_argmin=False),  # dense route
                DPSolverConfig(engine_min_states=0,
                               shared_backward_density=1.0),  # CSR route
        ):
            result = SailorPlanner(opt_env, config=PlannerConfig(
                dp_config=dp_config)).plan(opt_job, mixed_topology, objective)
            assert result.found
            snapshot = (plan_to_json(result.plan),
                        result.evaluation.iteration_time_s,
                        result.evaluation.cost_per_iteration_usd,
                        result.search_stats.nodes_explored)
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference
            if dp_config.fused_combine:
                fused_hits += result.search_stats.combine_fused_hits
            else:
                assert result.search_stats.combine_fused_hits == 0
    assert fused_hits > 0


def test_disabling_h2_can_generate_oom_candidates(neo_env, neo_job,
                                                  mixed_topology):
    heuristics = HeuristicConfig(prune_oom_early=False)
    planner = SailorPlanner(neo_env, config=PlannerConfig(heuristics=heuristics,
                                                          time_limit_s=20.0))
    result = planner.plan(neo_job, mixed_topology, Objective.max_throughput())
    default_planner = SailorPlanner(neo_env,
                                    config=PlannerConfig(time_limit_s=20.0))
    default_result = default_planner.plan(neo_job, mixed_topology,
                                          Objective.max_throughput())
    assert default_result.oom_plans_generated == 0
    # Without H2 the planner may propose plans that the simulator then rejects.
    assert result.oom_plans_generated >= default_result.oom_plans_generated
