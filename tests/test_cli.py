"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, parse_nodes


def test_catalog_lists_everything(capsys):
    assert main(["catalog"]) == 0
    out = capsys.readouterr().out
    assert "A100-40" in out
    assert "a2-highgpu-4g" in out
    assert "OPT-350M" in out


def test_catalog_kind_filter(capsys):
    assert main(["catalog", "--kind", "models"]) == 0
    out = capsys.readouterr().out
    assert "OPT-350M" in out
    assert "a2-highgpu-4g" not in out


def test_parse_nodes_builds_topology():
    topology = parse_nodes(["us-central1-a:a2-highgpu-4g:2",
                            "us-central1-a:n1-standard-v100-4:1",
                            "us-west1-a:a2-highgpu-4g:1"])
    assert topology.node_count("us-central1-a", "a2-highgpu-4g") == 2
    assert topology.total_gpus() == 16
    with pytest.raises(SystemExit):
        parse_nodes(["bad-spec"])
    with pytest.raises(SystemExit):
        parse_nodes(["zone:no-such-node:2"])
    with pytest.raises(SystemExit):
        parse_nodes(["zone:a2-highgpu-4g:two"])


def test_plan_and_simulate_roundtrip(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    result_path = tmp_path / "result.json"
    code = main([
        "plan", "--model", "OPT-350M", "--global-batch-size", "256",
        "--nodes", "us-central1-a:a2-highgpu-4g:4",
        "--objective", "throughput",
        "--output", str(plan_path), "--result-output", str(result_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "estimated throughput" in out
    assert plan_path.exists() and result_path.exists()
    document = json.loads(plan_path.read_text())
    assert document["job"]["model"] == "OPT-350M"

    code = main(["simulate", "--plan", str(plan_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "iterations" in out or "iters/s" in out


def test_plan_reports_search_stats(capsys):
    code = main([
        "plan", "--model", "OPT-350M", "--global-batch-size", "256",
        "--nodes", "us-central1-a:a2-highgpu-4g:2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "search stats" in out
    assert "nodes=" in out


def test_plan_accepts_workers_flag(tmp_path, capsys):
    result_path = tmp_path / "result.json"
    code = main([
        "plan", "--model", "OPT-350M", "--global-batch-size", "256",
        "--nodes", "us-central1-a:a2-highgpu-4g:2",
        "--workers", "2", "--result-output", str(result_path),
    ])
    assert code == 0
    document = json.loads(result_path.read_text())
    assert "parallel" in document["notes"]
    assert document["search_stats"]["nodes_explored"] > 0


def test_plan_with_impossible_constraint_fails(capsys):
    code = main([
        "plan", "--model", "OPT-350M", "--global-batch-size", "256",
        "--nodes", "us-central1-a:a2-highgpu-4g:1",
        "--objective", "cost", "--min-throughput", "1000",
    ])
    assert code == 1
    assert "no valid plan" in capsys.readouterr().out


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["plan", "--model", "GPT-17T",
              "--nodes", "us-central1-a:a2-highgpu-4g:1"])


def test_experiment_subcommand_runs(capsys):
    assert main(["experiment", "figure2", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])
