"""Property tests pinning every lower bound the search stack claims.

The invariant linter's ``admissibility`` rule (see CONTRACTS.md) requires
each function claiming a bound -- names ending in ``_lb``, containing
``floor``, or docstrings claiming admissibility -- to be referenced by a
test.  These tests are those references, and they check the actual
property: each floor/bound, computed through the production code paths,
never exceeds the true value it claims to bound (with at most the
documented relative slack).

Covered here: ``DPSolver._prepare_bounds`` / ``DPSolver._suffix_lower_bound``
(suffix bounds of the branch-and-bound DP), ``SailorPlanner._stage_floors``
/ ``SailorPlanner._candidate_floor`` / ``SailorPlanner._unexplored_bound``
(availability-free candidate floors behind the anytime gap certificate and
the ordering tail kill, priced inside ``SailorPlanner._plan_branch``),
``SailorPlanner._family_floor`` / ``SailorPlanner._availability_tables`` /
``SailorPlanner._candidate_floor_available`` (the dominated-family interval
memo and the availability-aware tail-kill floors, randomized against
exhaustive member enumeration on small pools), and
``PlanArrays.iteration_time_floor_s`` via
``SailorSimulator.iteration_time_floor`` (the incumbent-gate floor).
"""

import math
import random

import pytest

from repro.core.budget import SearchBudget
from repro.core.dp_solver import DPSolver
from repro.core.heuristics import (
    HeuristicConfig,
    consolidate_zones,
    data_parallel_candidates,
    min_tp_per_stage,
    tp_options_for_stage,
)
from repro.core.objectives import Objective, OptimizationGoal
from repro.core.planner import PlannerConfig, SailorPlanner
from repro.core.search_cache import PlannerSearchContext, tp_options_key
from repro.core.simulator import SailorSimulator
from repro.hardware.topology import ClusterTopology
from repro.models.partition import uniform_partition


def _build_solver(env, job, goal, pp=2, dp=2, mbs=2,
                  node_types=("a2-highgpu-4g", "n1-standard-v100-4")):
    partitions = uniform_partition(job.model, pp)
    config = HeuristicConfig()
    tp_req = min_tp_per_stage(job, partitions, list(node_types), mbs,
                              num_microbatches_in_flight_cap=pp, env=env,
                              config=config)
    tp_options = [tp_options_for_stage(stage, config) for stage in tp_req]
    return DPSolver(env=env, job=job, partitions=partitions,
                    tp_options_per_stage=tp_options, microbatch_size=mbs,
                    data_parallel=dp,
                    num_microbatches=job.num_microbatches(dp, mbs), goal=goal)


def _branch_inputs(env, job, topology, goal, pp, mbs):
    """The exact (context, partitions, tp_options, resources) one
    ``_plan_branch`` call builds for a (P, mbs) branch."""
    heuristics = HeuristicConfig()
    consolidated = consolidate_zones(topology, heuristics)
    resources = SailorPlanner._resource_map(consolidated.topology)
    context = PlannerSearchContext(env, job, goal)
    partitions = context.partitions(pp)
    tp_req = min_tp_per_stage(job, partitions,
                              consolidated.topology.node_types(), mbs,
                              num_microbatches_in_flight_cap=pp, env=env,
                              config=heuristics)
    tp_options = [tp_options_for_stage(per_stage, heuristics)
                  for per_stage in tp_req]
    return consolidated, resources, context, partitions, tp_options


@pytest.mark.parametrize("goal", [OptimizationGoal.MAX_THROUGHPUT,
                                  OptimizationGoal.MIN_COST])
def test_suffix_lower_bound_never_exceeds_solution_value(opt_env, opt_job,
                                                         goal):
    """``_suffix_lower_bound(j, a_j)`` bounds *any* completion that assigns
    ``a_j`` to stage ``j`` -- in particular the solver's own optimum, whose
    prefix stages only add non-negative time/cost on top of the suffix."""
    solver = _build_solver(opt_env, opt_job, goal)
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solution = solver.solve(resources)
    assert solution is not None
    # solve() already ran _prepare_bounds on this root; re-running it is
    # deterministic and must agree that the root is feasible.
    assert solver._prepare_bounds(solver._root) is True
    value = solver._value(solution)
    for stage_index, assignment in enumerate(solution.assignments):
        bound = solver._suffix_lower_bound(stage_index, assignment)
        assert bound <= value * (1 + 1e-9), (
            f"stage {stage_index}: suffix bound {bound} exceeds the "
            f"optimum's value {value}")


def test_prepare_bounds_rejects_infeasible_root(opt_env, opt_job):
    """An empty root pool offers no option for any stage: the bound
    precomputation must report infeasibility, not fabricate a floor."""
    solver = _build_solver(opt_env, opt_job, OptimizationGoal.MAX_THROUGHPUT)
    assert solver._prepare_bounds(()) is False


@pytest.mark.parametrize("objective", [Objective.max_throughput(),
                                       Objective.min_cost()],
                         ids=["throughput", "cost"])
def test_candidate_floor_bounds_the_chosen_plans_evaluation(
        opt_env, opt_job, mixed_topology, objective):
    """The availability-free floor of the winning (P, mbs, D) candidate
    must not exceed the simulator's actual evaluation of the plan the
    planner chose for it -- the exact comparison the ordering tail kill
    and the gap certificate rely on."""
    result = SailorPlanner(opt_env).plan(opt_job, mixed_topology, objective)
    assert result.found
    plan = result.plan
    pp = len(plan.stages)
    mbs = plan.microbatch_size
    dp = plan.data_parallel
    _, _, context, partitions, tp_options = _branch_inputs(
        opt_env, opt_job, mixed_topology, objective.goal, pp, mbs)
    floors = SailorPlanner._stage_floors(context, partitions, tp_options, mbs)
    assert floors is not None
    minimize_cost = objective.goal is OptimizationGoal.MIN_COST
    floor = SailorPlanner._candidate_floor(opt_job, floors, mbs, dp,
                                           minimize_cost)
    actual = SailorPlanner._incumbent_value(objective, result.evaluation)
    assert floor <= actual, (
        f"candidate floor {floor} exceeds the simulator value {actual}")


def test_unexplored_bound_certifies_the_branch_optimum(opt_env, opt_job,
                                                       mixed_topology):
    """Cut a branch before its first candidate: the priced tail then covers
    *every* candidate, so its bound must lie at or below the value the
    exhaustive run of the same branch actually achieves."""
    objective = Objective.max_throughput()
    pp, mbs = 2, 2
    planner = SailorPlanner(opt_env)
    consolidated, resources, context, partitions, tp_options = _branch_inputs(
        opt_env, opt_job, mixed_topology, objective.goal, pp, mbs)

    exhausted = SearchBudget(max_ticks=1)
    assert exhausted.expired() is False  # arms the countdown
    exhausted.ticks = 1
    assert exhausted.expired() is True
    truncated = planner._plan_branch(opt_job, objective, consolidated,
                                     resources, pp, mbs,
                                     PlannerSearchContext(
                                         opt_env, opt_job, objective.goal),
                                     exhausted)
    assert truncated.complete is False
    assert truncated.plan is None  # nothing explored: the bound covers all

    full = planner._plan_branch(opt_job, objective, consolidated, resources,
                                pp, mbs, context, None)
    assert full.complete is True
    assert full.evaluation is not None
    best = SailorPlanner._incumbent_value(objective, full.evaluation)
    # Direct check of the same arithmetic _plan_branch priced the cut with.
    bound = planner._unexplored_bound(
        opt_job, objective, context, partitions, tp_options, mbs, [1, 2, 4])
    assert truncated.unexplored_lb <= best * (1 + 1e-9)
    assert bound <= best * (1 + 1e-9)


@pytest.mark.parametrize("objective", [Objective.max_throughput(),
                                       Objective.min_cost()],
                         ids=["throughput", "cost"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_family_and_availability_floors_vs_exhaustive_enumeration(
        opt_env, opt_job, objective, seed):
    """Randomized pools, exhaustively enumerated: on every (P, mbs) branch
    of a small random cluster, the availability-aware candidate floor
    (``_candidate_floor_available`` over ``_availability_tables``) and the
    family floor (``_family_floor``) must bound the simulator value of
    *every* member the full DP + evaluation pipeline produces, and the
    pool-aware floor must be at least as tight as the availability-free
    ``_candidate_floor`` it replaces."""
    rng = random.Random(seed)
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": rng.randint(1, 3),
        "n1-standard-v100-4": rng.randint(1, 3),
    })
    planner = SailorPlanner(opt_env)
    heuristics = planner.config.heuristics
    consolidated = consolidate_zones(topology, heuristics)
    resources = SailorPlanner._resource_map(consolidated.topology)
    context = PlannerSearchContext(opt_env, opt_job, objective.goal)
    minimize_cost = objective.goal is OptimizationGoal.MIN_COST
    max_mixed = planner.config.dp_config.max_mixed_types_per_stage
    members_checked = 0
    for pp, mbs in SailorPlanner._branch_specs(
            opt_job, sum(resources.values()), heuristics):
        partitions = context.partitions(pp)
        tp_req = min_tp_per_stage(opt_job, partitions,
                                  consolidated.topology.node_types(), mbs,
                                  num_microbatches_in_flight_cap=pp,
                                  env=opt_env, config=heuristics)
        if any(not per_stage for per_stage in tp_req):
            continue
        tp_options = [tp_options_for_stage(per_stage, heuristics)
                      for per_stage in tp_req]
        max_dp = planner._max_data_parallel(resources, tp_options, pp)
        dp_candidates = data_parallel_candidates(
            opt_job, mbs, max_dp, maximize_throughput=not minimize_cost,
            config=heuristics)
        if not dp_candidates:
            continue

        family = planner._family_floor(opt_job, context, partitions,
                                       tp_options, mbs, pp, dp_candidates,
                                       minimize_cost)
        # The interval memo must be value-preserving: re-pricing the family
        # from the now-warm tables agrees bitwise with the cold pass.
        assert planner._family_floor(opt_job, context, partitions,
                                     tp_options, mbs, pp, dp_candidates,
                                     minimize_cost) == family
        tables = SailorPlanner._availability_tables(
            context, partitions, tp_options, mbs, pp, resources)
        floors = SailorPlanner._stage_floors(context, partitions, tp_options,
                                             mbs)

        member_values = []
        for dp in dp_candidates:
            avail = SailorPlanner._candidate_floor_available(
                opt_job, tables, mbs, dp, minimize_cost, max_mixed)
            if floors is not None:
                free = SailorPlanner._candidate_floor(opt_job, floors, mbs,
                                                      dp, minimize_cost)
                # Pool-aware floors restrict the per-stage minima to the
                # options the pool actually offers at the capacity
                # threshold: tighter-or-equal, never looser.
                assert avail >= free
                assert family <= free
            solver = DPSolver(
                env=opt_env, job=opt_job, partitions=partitions,
                tp_options_per_stage=tp_options, microbatch_size=mbs,
                data_parallel=dp,
                num_microbatches=opt_job.num_microbatches(dp, mbs),
                goal=objective.goal, config=planner.config.dp_config,
                context=context)
            solution = solver.solve(dict(resources))
            if solution is None:
                continue
            plan = planner._build_plan(opt_job, partitions, mbs, solution,
                                       consolidated)
            if plan is None:
                continue
            evaluation = planner.simulator.evaluate(plan)
            if not evaluation.is_valid:
                continue
            value = SailorPlanner._incumbent_value(objective, evaluation)
            assert avail <= value * (1 + 1e-9), (
                f"P{pp}/mbs{mbs}/D{dp}: availability-aware floor {avail} "
                f"exceeds the simulator value {value}")
            member_values.append(value)
            members_checked += 1
        if member_values:
            assert family <= min(member_values) * (1 + 1e-9), (
                f"P{pp}/mbs{mbs}: family floor {family} exceeds the best "
                f"member value {min(member_values)}")
    assert members_checked > 0  # the random pool really exercised the DP


def test_floor_memo_accessors_reuse_warm_tables(opt_env, opt_job,
                                                mixed_topology):
    """The context accessors behind the interval memo: stage floors are
    computed once per (P, mbs, TP-key) family (``family_stage_floors``),
    member floors accumulate in a shared mutable table
    (``family_member_floors``), and a repeated (branch, pool) signature
    reuses the availability tables warm and counts the hit
    (``availability_floors`` -> ``SearchStats.availability_floor_hits``)."""
    objective = Objective.max_throughput()
    pp, mbs = 2, 2
    planner = SailorPlanner(opt_env)
    _, resources, context, partitions, tp_options = _branch_inputs(
        opt_env, opt_job, mixed_topology, objective.goal, pp, mbs)

    tp_key = tuple(tp_options_key(options) for options in tp_options)
    builds = []
    build = lambda: builds.append(1) or SailorPlanner._stage_floors(  # noqa: E731
        context, partitions, tp_options, mbs)
    first = context.family_stage_floors(pp, mbs, tp_key, build)
    assert context.family_stage_floors(pp, mbs, tp_key, build) == first
    assert len(builds) == 1  # second lookup never re-runs the build

    members = context.family_member_floors(pp, mbs, tp_key)
    assert members == {}
    floor = planner._family_floor(opt_job, context, partitions, tp_options,
                                  mbs, pp, [1, 2], False)
    assert set(members) == {1, 2}  # same mutable table, now warm
    assert floor == min(members.values())
    # A later snapshot admitting D=4 extends the table without touching
    # the still-valid earlier members (the validity-interval property).
    planner._family_floor(opt_job, context, partitions, tp_options,
                          mbs, pp, [2, 4], False)
    assert set(members) == {1, 2, 4}

    assert context.stats.availability_floor_hits == 0
    tables = SailorPlanner._availability_tables(context, partitions,
                                                tp_options, mbs, pp,
                                                resources)
    assert context.stats.availability_floor_hits == 0  # cold build
    again = SailorPlanner._availability_tables(context, partitions,
                                               tp_options, mbs, pp,
                                               resources)
    assert again is tables  # warm reuse, not a rebuild
    assert context.stats.availability_floor_hits == 1


def test_iteration_time_floor_never_exceeds_full_evaluation(
        opt_env, opt_job, mixed_topology):
    """``PlanArrays.iteration_time_floor_s`` (pipeline + update, sync
    dropped) must never exceed the full iteration-time estimate, bitwise,
    on the plan the planner actually ships."""
    result = SailorPlanner(opt_env).plan(opt_job, mixed_topology,
                                         Objective.max_throughput())
    assert result.found
    simulator = SailorSimulator(opt_env)
    evaluation = simulator.evaluate(result.plan)
    floor = simulator.iteration_time_floor(result.plan)
    assert floor <= evaluation.iteration_time_s
    if simulator.context is not None:
        arrays = simulator.context.plan_arrays(result.plan)
        assert arrays.iteration_time_floor_s == floor
        assert arrays.iteration_time_floor_s <= evaluation.iteration_time_s
