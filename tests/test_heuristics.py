"""Unit tests for the planner heuristics H1-H6."""

import pytest

from repro.core.heuristics import (
    HeuristicConfig,
    consolidate_zones,
    data_parallel_candidates,
    microbatch_candidates,
    min_tp_per_stage,
    pipeline_parallel_candidates,
    tp_candidates_for_node,
    tp_options_for_stage,
)
from repro.hardware.topology import ClusterTopology
from repro.models.partition import uniform_partition


def test_h1_tp_candidates_limited_to_node():
    config = HeuristicConfig()
    assert tp_candidates_for_node("a2-highgpu-4g", config) == [1, 2, 4]
    config_off = HeuristicConfig(limit_tp_to_node=False)
    assert 8 in tp_candidates_for_node("a2-highgpu-4g", config_off)


def test_h2_min_tp_grows_with_model_size(opt_env, opt_job, neo_env, neo_job):
    config = HeuristicConfig()
    node_types = ["a2-highgpu-4g", "n1-standard-v100-4"]
    opt_req = min_tp_per_stage(opt_job, uniform_partition(opt_job.model, 1),
                               node_types, 1, 1, opt_env, config)
    neo_req = min_tp_per_stage(neo_job, uniform_partition(neo_job.model, 1),
                               node_types, 1, 1, neo_env, config)
    assert opt_req[0]["a2-highgpu-4g"] <= neo_req[0]["a2-highgpu-4g"]
    # GPT-Neo with a single pipeline stage cannot fit on a V100 at any TP.
    assert "n1-standard-v100-4" not in neo_req[0]


def test_h2_disabled_returns_smallest_degree(opt_env, opt_job):
    config = HeuristicConfig(prune_oom_early=False)
    req = min_tp_per_stage(opt_job, uniform_partition(opt_job.model, 2),
                           ["a2-highgpu-4g"], 8, 2, opt_env, config)
    assert req[0]["a2-highgpu-4g"] == 1


def test_tp_options_include_full_node_candidate():
    config = HeuristicConfig(extra_tp_candidates=True)
    options = tp_options_for_stage({"a2-highgpu-4g": 2}, config)
    assert options["a2-highgpu-4g"] == [2, 4]
    config_min_only = HeuristicConfig(extra_tp_candidates=False)
    options = tp_options_for_stage({"a2-highgpu-4g": 2}, config_min_only)
    assert options["a2-highgpu-4g"] == [2]


def test_h3_h4_data_parallel_ordering(opt_job):
    config = HeuristicConfig()
    descending = data_parallel_candidates(opt_job, 2, 16,
                                          maximize_throughput=True, config=config)
    ascending = data_parallel_candidates(opt_job, 2, 16,
                                         maximize_throughput=False, config=config)
    assert descending == sorted(descending, reverse=True)
    assert ascending == sorted(ascending)
    assert set(descending) == set(ascending)
    # All candidates split the global batch evenly.
    for dp in descending:
        assert opt_job.global_batch_size % dp == 0
        assert (opt_job.global_batch_size // dp) % 2 == 0
    assert data_parallel_candidates(opt_job, 2, 0, maximize_throughput=True,
                                    config=config) == []


def test_h6_zone_consolidation_merges_regions():
    topology = ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 2},
        "us-central1-b": {"a2-highgpu-4g": 3},
        "us-west1-a": {"a2-highgpu-4g": 4},
    })
    config = HeuristicConfig()
    consolidated = consolidate_zones(topology, config)
    merged = consolidated.topology
    assert merged.node_count("us-central1-a", "a2-highgpu-4g") == 5
    assert merged.node_count("us-west1-a", "a2-highgpu-4g") == 4
    assert merged.zones == ["us-central1-a", "us-west1-a"]
    members = consolidated.real_zones("us-central1-a", "a2-highgpu-4g")
    assert dict(members) == {"us-central1-a": 2, "us-central1-b": 3}


def test_h6_disabled_keeps_zones_separate():
    topology = ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 2},
        "us-central1-b": {"a2-highgpu-4g": 3},
    })
    config = HeuristicConfig(consolidate_zones=False)
    consolidated = consolidate_zones(topology, config)
    assert consolidated.topology.node_count("us-central1-a", "a2-highgpu-4g") == 2
    assert consolidated.topology.node_count("us-central1-b", "a2-highgpu-4g") == 3


def test_pipeline_and_microbatch_candidates(opt_job):
    config = HeuristicConfig(max_pipeline_parallel=8, max_microbatch_size=4)
    pps = pipeline_parallel_candidates(opt_job, total_nodes=16, config=config)
    assert max(pps) <= 8
    assert pps[0] in (1, 2, 3, 4, 6, 8)  # divisors of 24 preferred first
    mbs = microbatch_candidates(opt_job, config)
    assert mbs == [1, 2, 4]


def test_heuristic_config_describe_mentions_flags():
    text = HeuristicConfig(prune_oom_early=False).describe()
    assert "H2=off" in text and "H1=on" in text
