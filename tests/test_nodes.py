"""Unit tests for the node-type catalog."""

import pytest

from repro.hardware.gpus import get_gpu
from repro.hardware.nodes import (
    NodeSpec,
    get_node_type,
    list_node_types,
    node_type_for_gpu,
    register_node_type,
)


def test_catalog_contains_paper_node_types():
    for name in ("a2-highgpu-4g", "n1-standard-v100-4", "gh200-4g",
                 "titan-rtx-8g", "rtx-2080-8g", "rtx-3090-8g"):
        assert get_node_type(name).name == name


def test_a2_node_properties():
    node = get_node_type("a2-highgpu-4g")
    assert node.gpu.name == "A100-40"
    assert node.gpus_per_node == 4
    assert node.total_memory_gb == pytest.approx(160.0)
    assert node.valid_tp_degrees == (1, 2, 4)


def test_8gpu_node_tp_degrees_are_powers_of_two():
    node = get_node_type("titan-rtx-8g")
    assert node.valid_tp_degrees == (1, 2, 4, 8)


def test_invalid_node_specs_rejected():
    with pytest.raises(ValueError):
        NodeSpec(name="bad", gpu=get_gpu("A100-40"), gpus_per_node=0,
                 nic_bw_gbps=100)
    with pytest.raises(ValueError):
        NodeSpec(name="bad", gpu=get_gpu("A100-40"), gpus_per_node=4,
                 nic_bw_gbps=0)


def test_node_type_for_gpu_lookup():
    node = node_type_for_gpu("A100-40", 4)
    assert node.name == "a2-highgpu-4g"
    with pytest.raises(KeyError):
        node_type_for_gpu("A100-40", 16)


def test_register_node_type_conflict():
    node = NodeSpec(name="test-node-1", gpu=get_gpu("T4-16"), gpus_per_node=2,
                    nic_bw_gbps=10)
    register_node_type(node)
    other = NodeSpec(name="test-node-1", gpu=get_gpu("T4-16"), gpus_per_node=4,
                     nic_bw_gbps=10)
    with pytest.raises(ValueError):
        register_node_type(other)


def test_list_node_types_sorted():
    names = [n.name for n in list_node_types()]
    assert names == sorted(names)
