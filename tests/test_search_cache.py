"""Tests for the shared planner search context and its caches."""

import itertools

import pytest

from repro.core.dp_solver import DPSolver, StageOption
from repro.core.heuristics import (
    HeuristicConfig,
    min_tp_per_stage,
    tp_options_for_stage,
)
from repro.core.objectives import OptimizationGoal
from repro.core.plan import SearchStats
from repro.core.search_cache import (
    PlannerSearchContext,
    StageAssignment,
    tp_options_key,
)
from repro.models.partition import uniform_partition


def build_solver(env, job, context=None, pp=2, dp=2, mbs=2,
                 node_types=("a2-highgpu-4g", "n1-standard-v100-4"),
                 goal=OptimizationGoal.MAX_THROUGHPUT):
    partitions = uniform_partition(job.model, pp)
    config = HeuristicConfig()
    tp_req = min_tp_per_stage(job, partitions, list(node_types), mbs,
                              num_microbatches_in_flight_cap=pp, env=env,
                              config=config)
    tp_options = [tp_options_for_stage(stage, config) for stage in tp_req]
    return DPSolver(env=env, job=job, partitions=partitions,
                    tp_options_per_stage=tp_options, microbatch_size=mbs,
                    data_parallel=dp,
                    num_microbatches=job.num_microbatches(dp, mbs), goal=goal,
                    context=context)


RESOURCES = {("us-central1-a", "a2-highgpu-4g"): 4,
             ("us-central1-a", "n1-standard-v100-4"): 4}


def test_stage_assignment_precomputes_nodes_used():
    option = StageOption(zone="z", node_type="a2-highgpu-4g", tensor_parallel=2)
    assignment = StageAssignment(stage_index=0, placements=((option, 3),),
                                 compute_time_s=1.0, sync_time_s=0.0,
                                 cost_rate_usd_per_s=0.1)
    # 3 replicas at TP=2 on 4-GPU nodes -> 2 whole nodes.
    assert assignment.nodes_used == {("z", "a2-highgpu-4g"): 2}
    assert assignment.total_replicas == 3
    assert assignment.zones == ["z"]


def test_stage_assignment_and_option_are_frozen():
    option = StageOption(zone="z", node_type="a2-highgpu-4g", tensor_parallel=2)
    with pytest.raises(AttributeError):
        option.zone = "other"
    assignment = StageAssignment(stage_index=0, placements=((option, 1),),
                                 compute_time_s=1.0, sync_time_s=0.0,
                                 cost_rate_usd_per_s=0.1)
    with pytest.raises(AttributeError):
        assignment.compute_time_s = 2.0


def test_tp_options_key_is_order_insensitive():
    a = tp_options_key({"x": [1, 2], "y": [4]})
    b = tp_options_key({"y": [4], "x": [1, 2]})
    assert a == b
    assert isinstance(hash(a), int)


def test_context_shares_metric_caches_across_candidates(opt_env, opt_job):
    """Two DP candidates (different dp) reuse the same compute-time cache."""
    context = PlannerSearchContext(opt_env, opt_job)
    solver_a = build_solver(opt_env, opt_job, context=context, dp=2)
    solver_b = build_solver(opt_env, opt_job, context=context, dp=4)
    assert solver_a.solve(dict(RESOURCES)) is not None
    compute_entries = len(context._compute_time)
    misses_after_first = context.stats.cache_misses
    assert solver_b.solve(dict(RESOURCES)) is not None
    # Compute times are keyed independently of dp: the second candidate adds
    # no new entries, it only hits.
    assert len(context._compute_time) == compute_entries
    assert context.stats.cache_hits > 0
    # Sync times and assignments do depend on dp, so some misses are expected
    # -- but far fewer than a cold context would incur.
    cold = PlannerSearchContext(opt_env, opt_job)
    solver_cold = build_solver(opt_env, opt_job, context=cold, dp=4)
    assert solver_cold.solve(dict(RESOURCES)) is not None
    assert (context.stats.cache_misses - misses_after_first
            < cold.stats.cache_misses)


def test_generate_combos_matches_reference_enumeration(opt_env, opt_job):
    """The master-list filter reproduces the seed per-state enumeration."""
    solver = build_solver(opt_env, opt_job, dp=2)
    for resources in (dict(RESOURCES),
                      {("us-central1-a", "a2-highgpu-4g"): 2},
                      {("us-central1-a", "a2-highgpu-4g"): 1,
                       ("us-central1-a", "n1-standard-v100-4"): 4}):
        combos = solver.generate_combos(0, resources)
        reference = _reference_combos(solver, 0, resources)
        assert [tuple(c) for c in combos] == reference


def _reference_combos(solver, stage_index, resources):
    """Seed-style per-state combo enumeration (sorted, truncated)."""
    needed = solver.data_parallel
    config = solver.config
    tp_options = solver.tp_options_per_stage[stage_index]
    options = []
    for (zone, node_type), count in resources.items():
        if count <= 0 or node_type not in tp_options:
            continue
        for tp in tp_options[node_type]:
            option = StageOption(zone=zone, node_type=node_type,
                                 tensor_parallel=tp)
            max_replicas = count * option.replicas_per_node
            if max_replicas >= 1:
                options.append((option, max_replicas))
    by_region = {}
    for option, max_replicas in options:
        by_region.setdefault(solver.env.region_of(option.zone), []).append(
            (option, max_replicas))
    combos = []
    for region_options in by_region.values():
        for option, max_replicas in region_options:
            if max_replicas >= needed:
                combos.append(((option, needed),))
        if config.max_mixed_types_per_stage >= 2 and needed >= 2:
            for (opt_a, max_a), (opt_b, max_b) in itertools.combinations(
                    region_options, 2):
                if opt_a.zone == opt_b.zone and opt_a.node_type == opt_b.node_type:
                    continue
                points = {1, needed - 1}
                for fraction in config.split_fractions:
                    k = int(round(needed * fraction))
                    if 1 <= k <= needed - 1:
                        points.add(k)
                for k in sorted(points):
                    if k <= max_a and (needed - k) <= max_b:
                        combos.append(((opt_a, k), (opt_b, needed - k)))

    def combo_key(placements):
        metric = max(solver.stage_compute_time(stage_index, opt.node_type,
                                               opt.tensor_parallel)
                     for opt, _ in placements)
        # Same state-independent tiebreak as the master list, so truncation
        # keeps the same equal-metric combos regardless of resource state.
        return (metric, tuple((opt.zone, opt.node_type, opt.tensor_parallel,
                               count) for opt, count in placements))

    combos.sort(key=combo_key)
    return combos[:config.max_combos_per_stage]


def test_forward_layers_shared_across_candidates(opt_env, opt_job):
    """Two solvers sharing a context share forward reachability passes.

    The second candidate's engine solves have the same footprint signature
    (same P, D, mbs and root), so every one of its forward passes must be a
    layer-cache hit -- and the solutions must stay identical."""
    from repro.core.dp_solver import DPSolverConfig

    context = PlannerSearchContext(opt_env, opt_job)
    solver_a = build_solver(opt_env, opt_job, context=context)
    solver_a.config = DPSolverConfig(engine_min_states=0)
    solver_a.engine_min_states = 0
    solver_b = build_solver(opt_env, opt_job, context=context)
    solver_b.config = DPSolverConfig(engine_min_states=0)
    solver_b.engine_min_states = 0

    first = solver_a.solve(dict(RESOURCES))
    assert first is not None
    assert context.stats.layer_cache_hits == 0  # cold cache: all misses
    second = solver_b.solve(dict(RESOURCES))
    assert second is not None
    assert context.stats.layer_cache_hits > 0
    assert [x.placements for x in first.assignments] == \
        [x.placements for x in second.assignments]

    # Opting out per solver keeps the cache untouched and the plan identical.
    opted_out = build_solver(opt_env, opt_job, context=context)
    opted_out.config = DPSolverConfig(engine_min_states=0,
                                      enable_layer_cache=False)
    opted_out.engine_min_states = 0
    hits_before = context.stats.layer_cache_hits
    third = opted_out.solve(dict(RESOURCES))
    assert context.stats.layer_cache_hits == hits_before
    assert [x.placements for x in first.assignments] == \
        [x.placements for x in third.assignments]


def test_forward_layers_cache_is_bounded():
    """The FIFO bound evicts the oldest signature, never the newest."""
    context = PlannerSearchContext.__new__(PlannerSearchContext)
    context.stats = SearchStats()
    context._forward_layers = {}
    context._forward_layers_max = 2
    built = []

    def make(tag):
        def build():
            built.append(tag)
            return tag
        return build

    assert context.forward_layers(("a",), make("A")) == "A"
    assert context.forward_layers(("b",), make("B")) == "B"
    assert context.forward_layers(("c",), make("C")) == "C"  # evicts ("a",)
    assert len(context._forward_layers) == 2
    assert context.forward_layers(("c",), make("C2")) == "C"  # still cached
    assert context.stats.layer_cache_hits == 1
    assert context.forward_layers(("a",), make("A2")) == "A2"  # was evicted
    assert built == ["A", "B", "C", "A2"]


def test_search_stats_merge_and_dict_round_trip():
    a = SearchStats(nodes_explored=3, memo_hits=2, pruned_branches=1,
                    cache_hits=10, cache_misses=4)
    b = SearchStats(nodes_explored=1, memo_hits=5, pruned_branches=2,
                    cache_hits=1, cache_misses=1)
    a.merge(b)
    assert a.nodes_explored == 4
    assert a.memo_hits == 7
    assert a.pruned_branches == 3
    assert a.cache_hits == 11
    assert a.cache_misses == 5
    assert SearchStats.from_dict(a.as_dict()) == a
    assert SearchStats.from_dict({}) == SearchStats()
    assert "nodes=4" in a.describe()


def test_context_stats_shared_with_solver(opt_env, opt_job):
    context = PlannerSearchContext(opt_env, opt_job)
    solver = build_solver(opt_env, opt_job, context=context)
    assert solver.stats is context.stats
    solver.solve(dict(RESOURCES))
    assert solver.nodes_explored == context.stats.nodes_explored
    assert context.stats.nodes_explored > 0
