"""Unit tests for the carbon-accounting model."""

import pytest

from repro.core.plan import ParallelizationPlan
from repro.hardware.carbon import CarbonModel, CarbonFootprint


@pytest.fixture()
def model():
    return CarbonModel()


def a100_plan(job, dp=2):
    return ParallelizationPlan.homogeneous(job, "a2-highgpu-4g", 2, dp, 4, 2)


def v100_plan(job, dp=2):
    return ParallelizationPlan.homogeneous(job, "n1-standard-v100-4", 2, dp, 4, 2)


def test_footprint_positive_and_additive(model, opt_job):
    plan = a100_plan(opt_job)
    footprint = model.footprint(plan, iteration_time_s=10.0)
    assert footprint.operational_g > 0
    assert footprint.embodied_g > 0
    assert footprint.total_g == pytest.approx(
        footprint.operational_g + footprint.embodied_g)


def test_carbon_scales_with_iteration_time_and_gpus(model, opt_job):
    plan_small = a100_plan(opt_job, dp=1)
    plan_large = a100_plan(opt_job, dp=4)
    short = model.footprint(plan_small, 10.0)
    long = model.footprint(plan_small, 20.0)
    big = model.footprint(plan_large, 10.0)
    assert long.total_g == pytest.approx(2 * short.total_g)
    assert big.total_g == pytest.approx(4 * short.total_g)


def test_cleaner_region_has_lower_operational_carbon(model, opt_job):
    plan = a100_plan(opt_job)
    dirty = model.operational_g_per_iteration(plan, 10.0, lambda z: "us-central1")
    clean = model.operational_g_per_iteration(plan, 10.0, lambda z: "us-west1")
    assert clean < dirty


def test_older_gpus_have_lower_power_but_higher_per_work_carbon(model, opt_job):
    # Same iteration time: the V100 plan draws less power per GPU...
    a100 = model.footprint(a100_plan(opt_job), 10.0)
    v100 = model.footprint(v100_plan(opt_job), 10.0)
    assert v100.operational_g < a100.operational_g
    # ...but if it is ~2.5x slower for the same work, its carbon per
    # iteration-of-work is higher, which is the load-balancing trade-off.
    v100_slow = model.footprint(v100_plan(opt_job), 25.0)
    assert v100_slow.total_g > a100.total_g


def test_embodied_amortisation_uses_lifetime(opt_job):
    short_lived = CarbonModel(lifetime_years=3.0)
    long_lived = CarbonModel(lifetime_years=6.0)
    plan = a100_plan(opt_job)
    assert short_lived.embodied_g_per_iteration(plan, 10.0) == pytest.approx(
        2 * long_lived.embodied_g_per_iteration(plan, 10.0))


def test_grams_per_sample_and_validation(model, opt_job):
    plan = a100_plan(opt_job)
    per_sample = model.grams_per_sample(plan, 10.0)
    assert per_sample == pytest.approx(
        model.footprint(plan, 10.0).total_g / opt_job.global_batch_size)
    with pytest.raises(ValueError):
        model.embodied_g_per_iteration(plan, -1.0)
    with pytest.raises(ValueError):
        CarbonModel(lifetime_years=0)
    with pytest.raises(ValueError):
        CarbonModel(pue=0.5)
    with pytest.raises(KeyError):
        model.gpu_power("NO-SUCH-GPU")
    assert model.grid_intensity("unknown-region") > 0
    assert CarbonFootprint(1.0, 2.0).total_g == 3.0
