"""Unit tests for objectives and constraints."""

import pytest

from repro.core.objectives import Constraint, Objective, OptimizationGoal
from repro.core.plan import PlanEvaluation


def evaluation(throughput=0.2, cost=1.0, valid=True):
    return PlanEvaluation(
        iteration_time_s=1.0 / throughput if throughput else float("inf"),
        throughput_iters_per_s=throughput,
        cost_per_iteration_usd=cost,
        peak_memory_bytes_per_stage=[1.0],
        is_valid=valid,
    )


def test_constraint_validation():
    with pytest.raises(ValueError):
        Constraint(max_cost_per_iteration_usd=0)
    with pytest.raises(ValueError):
        Constraint(min_throughput_iters_per_s=-1)
    with pytest.raises(ValueError):
        Constraint(max_gpus=0)
    assert Constraint().is_unconstrained
    assert not Constraint(max_gpus=8).is_unconstrained


def test_constraint_satisfaction():
    constraint = Constraint(max_cost_per_iteration_usd=2.0,
                            min_throughput_iters_per_s=0.1, max_gpus=64)
    assert constraint.satisfied_by(evaluation(throughput=0.2, cost=1.0),
                                   total_gpus=32)
    assert not constraint.satisfied_by(evaluation(throughput=0.05, cost=1.0),
                                       total_gpus=32)
    assert not constraint.satisfied_by(evaluation(throughput=0.2, cost=3.0),
                                       total_gpus=32)
    assert not constraint.satisfied_by(evaluation(throughput=0.2, cost=1.0),
                                       total_gpus=128)
    assert not constraint.satisfied_by(evaluation(valid=False), total_gpus=1)


def test_objective_scoring_throughput():
    objective = Objective.max_throughput()
    assert objective.goal is OptimizationGoal.MAX_THROUGHPUT
    fast, slow = evaluation(0.5), evaluation(0.1)
    assert objective.score(fast) > objective.score(slow)
    assert objective.better(fast, slow)
    assert objective.better(fast, None)
    assert not objective.better(slow, fast)


def test_objective_scoring_cost():
    objective = Objective.min_cost()
    cheap, expensive = evaluation(cost=0.5), evaluation(cost=2.0)
    assert objective.score(cheap) > objective.score(expensive)
    assert objective.better(cheap, expensive)


def test_factories_carry_constraints():
    objective = Objective.max_throughput(max_cost_per_iteration_usd=1.2,
                                         max_gpus=256)
    assert objective.constraint.max_cost_per_iteration_usd == 1.2
    assert objective.constraint.max_gpus == 256
    objective = Objective.min_cost(min_throughput_iters_per_s=0.2)
    assert objective.constraint.min_throughput_iters_per_s == 0.2
