"""Unit tests for plan datatypes."""

import pytest

from repro.core.plan import (
    ParallelizationPlan,
    ResourceAllocation,
    StageConfig,
    StageReplica,
)
from repro.models.catalog import get_model
from repro.models.partition import uniform_partition
from repro.models.spec import TrainingJobSpec


@pytest.fixture()
def job():
    return TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=256)


def test_stage_replica_validation():
    replica = StageReplica("a2-highgpu-4g", 4, "us-central1-a")
    assert replica.gpu_type == "A100-40"
    assert replica.num_gpus == 4
    with pytest.raises(ValueError):
        StageReplica("a2-highgpu-4g", 8, "us-central1-a")  # H1 violation
    with pytest.raises(ValueError):
        StageReplica("a2-highgpu-4g", 0, "us-central1-a")


def test_homogeneous_plan_properties(job):
    plan = ParallelizationPlan.homogeneous(job, "a2-highgpu-4g", 4, 2, 4, 2)
    assert plan.pipeline_parallel == 4
    assert plan.data_parallel == 2
    assert plan.total_gpus == 4 * 2 * 4
    assert plan.num_microbatches == 256 // (2 * 2)
    assert plan.gpus_by_type() == {"A100-40": 32}
    assert plan.zones() == ["us-central1-a"]
    assert not plan.is_heterogeneous()
    assert "P=4" in plan.describe()


def test_plan_rejects_mismatched_dp(job):
    partitions = uniform_partition(job.model, 2)
    stages = [
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 1, "z")] * 2),
        StageConfig(partitions[1], [StageReplica("a2-highgpu-4g", 1, "z")] * 3),
    ]
    with pytest.raises(ValueError, match="data-parallel"):
        ParallelizationPlan(job=job, stages=stages, microbatch_size=1)


def test_plan_rejects_wrong_layer_coverage(job):
    partitions = uniform_partition(job.model, 4)
    stages = [StageConfig(p, [StageReplica("a2-highgpu-4g", 1, "z")])
              for p in partitions[:3]]
    with pytest.raises(ValueError, match="layers"):
        ParallelizationPlan(job=job, stages=stages, microbatch_size=1)


def test_plan_rejects_indivisible_batch(job):
    with pytest.raises(ValueError):
        ParallelizationPlan.homogeneous(job, "a2-highgpu-4g", 2, 3, 1, 1)


def test_heterogeneous_plan_detection(job):
    partitions = uniform_partition(job.model, 2)
    stages = [
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "z1"),
                                    StageReplica("a2-highgpu-4g", 4, "z1")]),
        StageConfig(partitions[1], [StageReplica("n1-standard-v100-4", 2, "z1"),
                                    StageReplica("n1-standard-v100-4", 2, "z1")]),
    ]
    plan = ParallelizationPlan(job=job, stages=stages, microbatch_size=2)
    assert plan.is_heterogeneous()
    assert plan.gpus_by_type() == {"A100-40": 8, "V100-16": 4}
    chain = plan.pipeline(1)
    assert [r.gpu_type for r in chain] == ["A100-40", "V100-16"]
    with pytest.raises(IndexError):
        plan.pipeline(2)


def test_resource_allocation_packs_replicas_onto_nodes(job):
    # 4 replicas of TP=2 on 4-GPU nodes in one zone -> 2 nodes per stage.
    plan = ParallelizationPlan.homogeneous(job, "a2-highgpu-4g",
                                           pipeline_parallel=2, data_parallel=4,
                                           tensor_parallel=2, microbatch_size=1)
    allocation = plan.resource_allocation()
    assert allocation.node_count("us-central1-a", "a2-highgpu-4g") == 4
    assert allocation.total_gpus() == 16
    assert allocation.total_nodes() == 4
    assert allocation.gpus_by_type() == {"A100-40": 16}
    assert allocation.zones() == ["us-central1-a"]


def test_resource_allocation_fits_within():
    allocation = ResourceAllocation()
    allocation.add("us-central1-a", "a2-highgpu-4g", 3)

    class FakeTopology:
        def node_count(self, zone, node_type):
            return 2

    assert not allocation.fits_within(FakeTopology())
    allocation2 = ResourceAllocation()
    allocation2.add("us-central1-a", "a2-highgpu-4g", 2)
    assert allocation2.fits_within(FakeTopology())
    with pytest.raises(ValueError):
        allocation.add("z", "a2-highgpu-4g", -1)
