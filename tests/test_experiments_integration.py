"""Integration tests: run the experiment harnesses at tiny scale and check
that the paper's qualitative claims hold in the reproduction."""

import math

import pytest

from repro.experiments import (
    ablations,
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure10,
    figure11,
    reconfiguration,
    table1,
    table3,
)


pytestmark = pytest.mark.slow


def by_planner(rows, planner, key):
    values = [row[key] for row in rows if row["planner"] == planner]
    assert values, f"no rows for {planner}"
    return values


def test_figure1_heterogeneity_beats_limited_homogeneous():
    table = figure1.run("tiny")
    rows = {row["config"]: row for row in table.rows}
    assert set(rows) == {"c0", "c1", "c2", "c3", "c4", "c5", "c6"}
    # Good heterogeneous/multi-zone configs beat the attainable homogeneous ones.
    assert rows["c3"]["throughput_iters_per_s"] > rows["c0"]["throughput_iters_per_s"]
    assert rows["c4"]["throughput_iters_per_s"] > rows["c0"]["throughput_iters_per_s"]
    # A bad parallelization of the same resources is much worse.
    assert rows["c5"]["throughput_iters_per_s"] < rows["c3"]["throughput_iters_per_s"]
    # Crossing regions costs more than staying within one region.
    assert rows["c6"]["cost_per_iteration_usd"] > rows["c4"]["cost_per_iteration_usd"]


def test_figure2_trace_shapes():
    table = figure2.run("tiny")
    ramp = [row["available_gpus"] for row in table.rows
            if row["zone"] == "us-central1-a"]
    fluctuating = [row["available_gpus"] for row in table.rows
                   if row["zone"] == "us-central1-b"]
    assert ramp[-1] == 8
    assert all(b >= a for a, b in zip(ramp, ramp[1:]))
    assert max(fluctuating) < 8


def test_figure3_sailor_memory_estimates_closest():
    table = figure3.run("tiny")
    sailor_errors = [row["error_percent"] for row in table.rows
                     if row["planner"] == "sailor"]
    baseline_errors = [row["error_percent"] for row in table.rows
                       if row["planner"] not in ("sailor", "real")
                       and not math.isnan(row["error_percent"])]
    assert max(sailor_errors) < 15.0
    assert sum(sailor_errors) / len(sailor_errors) < \
        sum(baseline_errors) / len(baseline_errors)


def test_figure5_and_6_sailor_has_lowest_error():
    table5 = figure5.run("tiny")
    for metric in ("memory", "time"):
        rows = [r for r in table5.rows if r["metric"] == metric]
        sailor = next(r for r in rows if r["planner"] == "sailor")
        others = [r["mean_error_percent"] for r in rows
                  if r["planner"] != "sailor" and not math.isnan(r["mean_error_percent"])]
        assert sailor["mean_error_percent"] <= min(others) + 1.0

    table6 = figure6.run("tiny")
    sailor = next(r for r in table6.rows if r["planner"] == "sailor")
    flashflex = next(r for r in table6.rows if r["planner"] == "flashflex")
    piper = next(r for r in table6.rows if r["planner"] == "piper")
    assert sailor["mean_error_percent"] < piper["mean_error_percent"]
    assert sailor["mean_error_percent"] < flashflex["mean_error_percent"]
    assert piper["mean_error_percent"] > 10.0  # straggler-oblivious penalty


def test_figure7_sailor_at_least_matches_best_baseline():
    table = figure7.run("tiny", gpu_counts=(32,),
                        planners=("varuna", "amp", "galvatron", "sailor"))
    sailor = by_planner(table.rows, "sailor", "throughput_iters_per_s")[0]
    best_baseline = max(row["throughput_iters_per_s"] for row in table.rows
                        if row["planner"] != "sailor")
    assert sailor >= best_baseline * 0.95
    assert by_planner(table.rows, "sailor", "oom_plans")[0] == 0


def test_figure10_sailor_wins_small_heterogeneous_cluster():
    table = figure10.run("tiny", setups=((8, 8),),
                         planners=("amp", "flashflex", "sailor"))
    sailor = by_planner(table.rows, "sailor", "throughput_iters_per_s")[0]
    for planner in ("amp", "flashflex"):
        assert sailor >= by_planner(table.rows, planner,
                                    "throughput_iters_per_s")[0] * 0.95
    assert by_planner(table.rows, "sailor", "oom_plans")[0] == 0


def test_figure11_sailor_beats_dtfm_geo_distributed():
    table = figure11.run("tiny", gpus_per_zone_options=(4,))
    sailor = by_planner(table.rows, "sailor", "throughput_iters_per_s")[0]
    dtfm = by_planner(table.rows, "dtfm", "throughput_iters_per_s")[0]
    assert sailor > dtfm
    sailor_cost = by_planner(table.rows, "sailor", "cost_per_iteration_usd")[0]
    dtfm_cost = by_planner(table.rows, "dtfm", "cost_per_iteration_usd")[0]
    assert sailor_cost <= dtfm_cost * 1.5


def test_table1_only_sailor_supports_everything():
    table = table1.run("tiny", num_gpus=32)
    sailor = next(r for r in table.rows if r["planner"] == "sailor")
    assert sailor["recommends_allocation"] and sailor["heterogeneous_gpus"] \
        and sailor["multi_zone"]
    for row in table.rows:
        if row["planner"] == "sailor":
            continue
        assert not (row["recommends_allocation"] and row["heterogeneous_gpus"]
                    and row["multi_zone"])
    assert sailor["found"]


def test_table3_heuristics_cut_search_time():
    table = table3.run("tiny", gpus_per_type=32, no_heuristics_cap_s=5.0)
    for gpu_types in (1, 2):
        rows = {r["configuration"]: r for r in table.rows
                if r["gpu_types"] == gpu_types}
        assert rows["dp_plus_heuristics"]["search_time_s"] <= \
            rows["dp_only"]["search_time_s"] + 1.0
        assert rows["dp_plus_heuristics"]["found"]


def test_reconfiguration_breakdown_matches_reference_constants():
    table = reconfiguration.run("tiny")
    phases = {row["phase"]: row["seconds"] for row in table.rows}
    assert phases["cleanup"] == pytest.approx(3.0)
    assert phases["nccl_init"] == pytest.approx(4.5, rel=0.25)
    assert phases["total"] > phases["cleanup"]
    assert phases["planning"] < 5.0


def test_ablations_show_expected_directions():
    table = ablations.run("tiny", gpus_per_type=16)
    h2 = {r["variant"]: r for r in table.rows if r["ablation"] == "H2_oom_pruning"}
    assert h2["on"]["oom_plans"] <= h2["off"]["oom_plans"]
    memory_rows = {r["variant"]: r["metric"] for r in table.rows
                   if r["ablation"] == "estimator_memory"}
    assert memory_rows["per_stage_memory"] <= memory_rows["uniform_stage_memory"]
