"""Equivalence suite for the vectorized evaluation layer.

Asserts that the vectorized path (``EvaluationContext`` + fused kernels +
evaluation cache) reproduces the retained scalar reference path
*bit-for-bit* over homogeneous, heterogeneous and multi-zone plans; that
``evaluate_many`` preserves input order; that the planner's candidate-level
incumbent gate never changes the chosen plan; and that the context's
per-plan cache hit/miss accounting behaves as documented.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.core.planner import PlannerConfig, SailorPlanner
from repro.core.simulator import EvaluationContext, SailorSimulator, plan_signature
from repro.models.partition import uniform_partition


def evaluations_equal(a, b) -> bool:
    """Bitwise equality of two PlanEvaluations (no tolerance)."""
    return dataclasses.asdict(a) == dataclasses.asdict(b)


def heterogeneous_plan(job, microbatch_size: int = 2) -> ParallelizationPlan:
    """Two stages mixing GPU types and TP degrees within one zone."""
    parts = uniform_partition(job.model, 2)
    zone = "us-central1-a"
    stages = [
        StageConfig(partition=parts[0], replicas=[
            StageReplica("a2-highgpu-4g", 2, zone),
            StageReplica("n1-standard-v100-4", 4, zone),
        ]),
        StageConfig(partition=parts[1], replicas=[
            StageReplica("n1-standard-v100-4", 2, zone),
            StageReplica("n1-standard-v100-4", 2, zone),
        ]),
    ]
    return ParallelizationPlan(job=job, stages=stages,
                               microbatch_size=microbatch_size)


def multizone_plan(job, microbatch_size: int = 2) -> ParallelizationPlan:
    """Two stages whose data-parallel groups span zones and regions."""
    parts = uniform_partition(job.model, 2)
    stages = [
        StageConfig(partition=parts[0], replicas=[
            StageReplica("a2-highgpu-4g", 4, "us-central1-a"),
            StageReplica("a2-highgpu-4g", 4, "us-central1-b"),
        ]),
        StageConfig(partition=parts[1], replicas=[
            StageReplica("a2-highgpu-4g", 4, "us-central1-b"),
            StageReplica("a2-highgpu-4g", 4, "us-west1-a"),
        ]),
    ]
    return ParallelizationPlan(job=job, stages=stages,
                               microbatch_size=microbatch_size)


# ---------------------------------------------------------------------------
# Vectorized vs scalar equivalence
# ---------------------------------------------------------------------------

VALID_CONFIGS = st.tuples(
    st.sampled_from([1, 2, 4]),          # pipeline parallel
    st.sampled_from([1, 2, 4]),          # data parallel
    st.sampled_from([1, 2, 4]),          # tensor parallel
    st.sampled_from([1, 2, 4]),          # microbatch size
)


@settings(max_examples=25, deadline=None)
@given(config=VALID_CONFIGS, check_memory=st.booleans())
def test_vectorized_matches_scalar_homogeneous(opt_env, opt_job, config,
                                               check_memory):
    pp, dp, tp, mbs = config
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g",
                                           pp, dp, tp, mbs)
    vectorized = SailorSimulator(opt_env).evaluate(plan,
                                                   check_memory=check_memory)
    scalar = SailorSimulator(opt_env, vectorized=False).evaluate(
        plan, check_memory=check_memory)
    assert evaluations_equal(vectorized, scalar)


@pytest.mark.parametrize("mbs", [1, 2, 4])
def test_vectorized_matches_scalar_heterogeneous(opt_env, opt_job, mbs):
    plan = heterogeneous_plan(opt_job, microbatch_size=mbs)
    vectorized = SailorSimulator(opt_env).evaluate(plan)
    scalar = SailorSimulator(opt_env, vectorized=False).evaluate(plan)
    assert evaluations_equal(vectorized, scalar)


def test_vectorized_matches_scalar_multizone(opt_env_geo, opt_job):
    plan = multizone_plan(opt_job)
    vectorized = SailorSimulator(opt_env_geo).evaluate(plan)
    scalar = SailorSimulator(opt_env_geo, vectorized=False).evaluate(plan)
    assert evaluations_equal(vectorized, scalar)
    # Cross-zone plans must exercise the egress-cost path.
    assert vectorized.communication_cost_usd > 0


def test_vectorized_matches_scalar_with_checkpointing(opt_env, opt_job):
    job = dataclasses.replace(opt_job, activation_checkpointing=True)
    plan = ParallelizationPlan.homogeneous(job, "a2-highgpu-4g", 4, 2, 4, 2)
    vectorized = SailorSimulator(opt_env).evaluate(plan)
    scalar = SailorSimulator(opt_env, vectorized=False).evaluate(plan)
    assert evaluations_equal(vectorized, scalar)


def test_oom_detection_identical_on_too_small_gpus(neo_env, neo_job):
    """A plan that OOMs scalar-side must OOM identically vectorized."""
    plan = ParallelizationPlan.homogeneous(neo_job, "n1-standard-v100-4",
                                           1, 2, 1, 1)
    vectorized = SailorSimulator(neo_env).evaluate(plan)
    scalar = SailorSimulator(neo_env, vectorized=False).evaluate(plan)
    assert evaluations_equal(vectorized, scalar)
    assert not vectorized.is_valid
    assert vectorized.oom_stages == [0]
    assert SailorSimulator(neo_env).oom_stages(plan) == [0]


def test_floor_never_exceeds_full_estimate(opt_env, opt_job):
    simulator = SailorSimulator(opt_env)
    plans = [
        ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2),
        ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 1, 4, 2, 1),
        heterogeneous_plan(opt_job),
    ]
    for plan in plans:
        floor = simulator.iteration_time_floor(plan)
        assert floor <= simulator.evaluate(plan).iteration_time_s
        assert floor > 0


# ---------------------------------------------------------------------------
# evaluate_many
# ---------------------------------------------------------------------------

def test_evaluate_many_preserves_input_order(opt_env, opt_job):
    simulator = SailorSimulator(opt_env)
    plans = [
        ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2),
        heterogeneous_plan(opt_job),
        ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 2, 2, 2, 4),
        # Duplicate of the first plan: must produce an equal result even
        # though it is served from the evaluation cache.
        ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2),
    ]
    batched = simulator.evaluate_many(plans)
    assert len(batched) == len(plans)
    reference = SailorSimulator(opt_env, vectorized=False)
    for plan, result in zip(plans, batched):
        assert evaluations_equal(result, reference.evaluate(plan))
    assert evaluations_equal(batched[0], batched[3])


def test_cached_evaluations_do_not_alias(opt_env, opt_job):
    """Mutating one returned evaluation must not corrupt the cache."""
    simulator = SailorSimulator(opt_env)
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2)
    first = simulator.evaluate(plan)
    first.peak_memory_bytes_per_stage.append(-1.0)
    first.oom_stages.append(99)
    second = simulator.evaluate(plan)
    assert second.oom_stages == []
    assert -1.0 not in second.peak_memory_bytes_per_stage


# ---------------------------------------------------------------------------
# EvaluationContext cache semantics
# ---------------------------------------------------------------------------

def test_plan_cache_hit_miss_accounting(opt_env, opt_job):
    context = EvaluationContext(opt_env)
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2)
    assert (context.plan_cache_hits, context.plan_cache_misses) == (0, 0)
    first = context.plan_arrays(plan)
    assert (context.plan_cache_hits, context.plan_cache_misses) == (0, 1)
    again = context.plan_arrays(plan)
    assert again is first
    assert (context.plan_cache_hits, context.plan_cache_misses) == (1, 1)
    # A *structurally equal* but distinct plan object hits the same entry.
    twin = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2)
    assert context.plan_arrays(twin) is first
    assert (context.plan_cache_hits, context.plan_cache_misses) == (2, 1)
    # Any structural difference is a distinct entry.
    other = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 1)
    assert context.plan_arrays(other) is not first
    assert (context.plan_cache_hits, context.plan_cache_misses) == (2, 2)


def test_plan_cache_disabled_rebuilds(opt_env, opt_job):
    context = EvaluationContext(opt_env, cache_plans=False)
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2)
    assert context.plan_arrays(plan) is not context.plan_arrays(plan)
    assert (context.plan_cache_hits, context.plan_cache_misses) == (0, 0)


def test_plan_signature_distinguishes_evaluation_inputs(opt_job):
    base = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2)
    twin = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2)
    assert plan_signature(base) == plan_signature(twin)
    for different in (
            ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 1),
            ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 2, 2, 4, 2),
            ParallelizationPlan.homogeneous(opt_job, "n1-standard-v100-4", 4, 2, 4, 2),
            ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2,
                                            zone="us-central1-b"),
            ParallelizationPlan.homogeneous(
                dataclasses.replace(opt_job, activation_checkpointing=True),
                "a2-highgpu-4g", 4, 2, 4, 2),
    ):
        assert plan_signature(different) != plan_signature(base)


def test_simulator_eval_cache_accounting(opt_env, opt_job):
    simulator = SailorSimulator(opt_env)
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2)
    simulator.evaluate(plan)
    simulator.evaluate(plan)
    simulator.evaluate(plan, check_memory=False)  # distinct cache key
    assert simulator.eval_cache_misses == 2
    assert simulator.eval_cache_hits == 1


# ---------------------------------------------------------------------------
# Incumbent gate: never skips the optimum
# ---------------------------------------------------------------------------

def _plans_identical(a, b) -> bool:
    if (a.plan is None) != (b.plan is None):
        return False
    if a.plan is None:
        return True
    return (a.plan.describe() == b.plan.describe()
            and evaluations_equal(a.evaluation, b.evaluation))


@pytest.mark.parametrize("objective", [
    Objective.max_throughput(),
    Objective.min_cost(),
    Objective.max_throughput(max_gpus=16),
], ids=["throughput", "cost", "throughput-max-gpus"])
def test_gate_on_off_chooses_identical_plans(opt_env, opt_job, mixed_topology,
                                             objective):
    gate_on = SailorPlanner(opt_env, config=PlannerConfig()).plan(
        opt_job, mixed_topology, objective)
    gate_off = SailorPlanner(opt_env, config=PlannerConfig(
        enable_candidate_gate=False)).plan(opt_job, mixed_topology, objective)
    assert _plans_identical(gate_on, gate_off)
    assert gate_on.candidates_evaluated == gate_off.candidates_evaluated
    assert gate_on.oom_plans_generated == gate_off.oom_plans_generated
    assert gate_off.search_stats.gate_skips == 0


def test_gate_on_off_identical_on_geo_topology(opt_env_geo, opt_job,
                                               geo_topology_2regions):
    objective = Objective.max_throughput()
    gate_on = SailorPlanner(opt_env_geo).plan(
        opt_job, geo_topology_2regions, objective)
    gate_off = SailorPlanner(opt_env_geo, config=PlannerConfig(
        enable_candidate_gate=False)).plan(
        opt_job, geo_topology_2regions, objective)
    assert _plans_identical(gate_on, gate_off)


@pytest.mark.parametrize("budget_fraction", [0.6, 1.5],
                         ids=["binding", "generous"])
def test_gate_arms_under_budget_constraint(opt_env, opt_job, mixed_topology,
                                           budget_fraction):
    """The gate stays armed under a budget: a candidate is skipped only
    when the floors also decide the constraint (cost floor over budget),
    so the chosen plan and every counter stay byte-identical."""
    unconstrained = SailorPlanner(opt_env).plan(
        opt_job, mixed_topology, Objective.max_throughput())
    budget = (unconstrained.evaluation.cost_per_iteration_usd
              * budget_fraction)
    objective = Objective.max_throughput(max_cost_per_iteration_usd=budget)
    gate_on = SailorPlanner(opt_env).plan(opt_job, mixed_topology, objective)
    gate_off = SailorPlanner(opt_env, config=PlannerConfig(
        enable_candidate_gate=False)).plan(opt_job, mixed_topology, objective)
    assert _plans_identical(gate_on, gate_off)
    assert gate_on.candidates_evaluated == gate_off.candidates_evaluated
    assert gate_on.oom_plans_generated == gate_off.oom_plans_generated
    assert gate_off.search_stats.gate_skips == 0


def test_gate_skips_over_budget_candidates_on_geo_topology(
        opt_env_geo, opt_job, geo_topology_2regions):
    """The DP's budget filter knows nothing about egress, so on a
    multi-zone topology it emits candidates whose exact egress cost busts
    the budget; the egress-covering cost floor proves that without the
    full evaluation -- the gate must actually fire, byte-identically."""
    unconstrained = SailorPlanner(opt_env_geo).plan(
        opt_job, geo_topology_2regions, Objective.max_throughput())
    budget = unconstrained.evaluation.cost_per_iteration_usd * 0.75
    objective = Objective.max_throughput(max_cost_per_iteration_usd=budget)
    gate_on = SailorPlanner(opt_env_geo).plan(
        opt_job, geo_topology_2regions, objective)
    gate_off = SailorPlanner(opt_env_geo, config=PlannerConfig(
        enable_candidate_gate=False)).plan(
        opt_job, geo_topology_2regions, objective)
    assert _plans_identical(gate_on, gate_off)
    assert gate_on.candidates_evaluated == gate_off.candidates_evaluated
    assert gate_on.oom_plans_generated == gate_off.oom_plans_generated
    assert gate_on.search_stats.gate_skips > 0
    assert gate_off.search_stats.gate_skips == 0


def test_gate_arms_under_min_cost_with_throughput_floor(opt_env, opt_job,
                                                        mixed_topology):
    objective = Objective.min_cost(min_throughput_iters_per_s=0.5)
    gate_on = SailorPlanner(opt_env).plan(opt_job, mixed_topology, objective)
    gate_off = SailorPlanner(opt_env, config=PlannerConfig(
        enable_candidate_gate=False)).plan(opt_job, mixed_topology, objective)
    assert _plans_identical(gate_on, gate_off)
    assert gate_on.candidates_evaluated == gate_off.candidates_evaluated


def test_gate_actually_skips_candidates(opt_env, opt_job, mixed_topology):
    result = SailorPlanner(opt_env).plan(opt_job, mixed_topology,
                                         Objective.max_throughput())
    assert result.search_stats.gate_skips > 0


# ---------------------------------------------------------------------------
# Cost floor: conservative and egress-covering
# ---------------------------------------------------------------------------

def test_cost_floor_never_exceeds_full_cost(opt_env, opt_job):
    """Floor property over the Table 3-style plan matrix (homogeneous,
    heterogeneous, checkpointing)."""
    simulator = SailorSimulator(opt_env)
    plans = [
        ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2),
        ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 1, 4, 2, 1),
        ParallelizationPlan.homogeneous(opt_job, "n1-standard-v100-4",
                                        2, 2, 2, 4),
        heterogeneous_plan(opt_job),
        ParallelizationPlan.homogeneous(
            dataclasses.replace(opt_job, activation_checkpointing=True),
            "a2-highgpu-4g", 4, 2, 4, 2),
    ]
    for plan in plans:
        floor = simulator.cost_floor(plan)
        assert 0 < floor <= simulator.evaluate(plan).cost_per_iteration_usd


def test_cost_floor_covers_egress_on_multizone_plans(opt_env_geo, opt_job):
    """Cross-zone plans must carry the (time-independent, exact) egress
    term in the floor -- that is what arms the gate under cost objectives."""
    simulator = SailorSimulator(opt_env_geo)
    plan = multizone_plan(opt_job)
    evaluation = simulator.evaluate(plan)
    floor = simulator.cost_floor(plan)
    assert evaluation.communication_cost_usd > 0
    # The floor includes the full egress cost on top of the compute floor.
    assert floor >= evaluation.communication_cost_usd
    assert floor <= evaluation.cost_per_iteration_usd


def test_cost_floor_scalar_path_agrees(opt_env, opt_job):
    plan = heterogeneous_plan(opt_job)
    vectorized = SailorSimulator(opt_env).cost_floor(plan)
    scalar = SailorSimulator(opt_env, vectorized=False).cost_floor(plan)
    assert vectorized == scalar  # bitwise: same scalars, same op order
