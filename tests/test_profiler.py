"""Unit tests for the simulated job and network profilers."""

import pytest

from repro.hardware.gpus import get_gpu
from repro.hardware.network import LinkClass, default_network_model
from repro.hardware.nodes import get_node_type
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec
from repro.profiler.compute import ComputeProfiler, GPUEfficiencyModel
from repro.profiler.network import NetworkProfiler, fit_bandwidth_polynomial
from repro.profiler.profiles import ProfileStore


@pytest.fixture(scope="module")
def job():
    return TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=256)


@pytest.fixture(scope="module")
def a100_profile(job):
    return ComputeProfiler().profile(job, get_gpu("A100-40"),
                                     microbatch_sizes=[1, 2, 4],
                                     tensor_parallel_degrees=[1, 2, 4])


def test_profile_covers_requested_grid(a100_profile):
    assert a100_profile.microbatch_sizes() == [1, 2, 4]
    assert a100_profile.tensor_parallel_degrees() == [1, 2, 4]
    assert a100_profile.has(2, 2)
    assert not a100_profile.has(8, 1)
    with pytest.raises(KeyError):
        a100_profile.layer(8, 1)


def test_layer_times_positive_and_backward_longer(a100_profile):
    layer = a100_profile.layer(2, 1)
    assert layer.forward_s > 0
    assert layer.backward_s > layer.forward_s
    assert layer.update_s > 0
    assert layer.fwd_bwd_s == pytest.approx(layer.forward_s + layer.backward_s)


def test_larger_microbatch_takes_longer(a100_profile):
    assert a100_profile.layer(4, 1).forward_s > a100_profile.layer(1, 1).forward_s


def test_tensor_parallelism_reduces_time_but_not_linearly(a100_profile):
    tp1 = a100_profile.layer(4, 1).forward_s
    tp4 = a100_profile.layer(4, 4).forward_s
    assert tp4 < tp1
    assert tp4 > tp1 / 4  # collectives + efficiency loss


def test_faster_gpu_is_faster(job):
    profiler = ComputeProfiler()
    a100 = profiler.profile(job, get_gpu("A100-40"), [2], [1])
    v100 = profiler.profile(job, get_gpu("V100-16"), [2], [1])
    assert a100.layer(2, 1).fwd_bwd_s < v100.layer(2, 1).fwd_bwd_s


def test_activation_and_boundary_bytes_recorded(a100_profile, job):
    act = a100_profile.activations(2, 1)
    assert act > 0
    assert a100_profile.activations(2, 2) == pytest.approx(act / 2)
    assert a100_profile.boundary_bytes[2] == \
        job.model.boundary_activation_bytes(2, job.sequence_length)


def test_profiler_noise_changes_measurements_deterministically(job):
    noisy_a = ComputeProfiler(noise_std=0.05, seed=1).profile(
        job, get_gpu("A100-40"), [2], [1])
    noisy_b = ComputeProfiler(noise_std=0.05, seed=1).profile(
        job, get_gpu("A100-40"), [2], [1])
    clean = ComputeProfiler().profile(job, get_gpu("A100-40"), [2], [1])
    assert noisy_a.layer(2, 1).forward_s == noisy_b.layer(2, 1).forward_s
    assert noisy_a.layer(2, 1).forward_s != clean.layer(2, 1).forward_s


def test_efficiency_model_monotone_in_work():
    model = GPUEfficiencyModel()
    gpu = get_gpu("A100-40")
    small = model.achieved_flops(gpu, 1e6)
    large = model.achieved_flops(gpu, 1e12)
    assert small < large <= gpu.peak_flops
    assert model.compute_time(gpu, 0) == 0.0
    with pytest.raises(ValueError):
        model.achieved_flops(gpu, 1e9, tensor_parallel=0)


# -- network profiler --------------------------------------------------------------

def test_fit_bandwidth_polynomial_validation():
    with pytest.raises(ValueError):
        fit_bandwidth_polynomial([1.0, 2.0], [1.0], degree=1)
    with pytest.raises(ValueError):
        fit_bandwidth_polynomial([1.0, 2.0], [1.0, 2.0], degree=3)
    with pytest.raises(ValueError):
        fit_bandwidth_polynomial([0.0, 2.0, 4.0, 8.0, 16.0],
                                 [1.0, 2.0, 3.0, 4.0, 5.0], degree=2)


def test_network_profile_fit_matches_ground_truth():
    network = default_network_model()
    profiler = NetworkProfiler(network)
    a100 = get_node_type("a2-highgpu-4g")
    profile = profiler.profile_pair(a100, a100, LinkClass.INTRA_ZONE)
    link = network.pair_link(a100, a100, LinkClass.INTRA_ZONE)
    # The fit is tight for the message sizes training actually uses (>= 1 MiB
    # activation/gradient tensors); the latency-bound tail is looser.
    for message in (1e6, 16e6, 64e6, 5e8):
        predicted = profile.transfer_time(message)
        truth = link.transfer_time(message)
        assert predicted == pytest.approx(truth, rel=0.1)
    assert profile.transfer_time(1e5) == pytest.approx(link.transfer_time(1e5),
                                                       rel=0.4)
    assert profile.transfer_time(0) == 0.0


def test_profile_all_pairs_populates_store():
    network = default_network_model()
    profiler = NetworkProfiler(network)
    nodes = [get_node_type("a2-highgpu-4g"), get_node_type("n1-standard-v100-4")]
    store = profiler.profile_all_pairs(nodes)
    assert isinstance(store, ProfileStore)
    # Cross-type pair exists for every cross-node link class, both orderings.
    for link_class in (LinkClass.INTRA_ZONE, LinkClass.INTER_ZONE,
                       LinkClass.INTER_REGION):
        profile = store.network_profile("a2-highgpu-4g", "n1-standard-v100-4",
                                        link_class)
        reverse = store.network_profile("n1-standard-v100-4", "a2-highgpu-4g",
                                        link_class)
        assert profile is reverse
    with pytest.raises(KeyError):
        store.network_profile("a2-highgpu-4g", "gh200-4g", LinkClass.INTRA_ZONE)


def test_inter_region_slower_than_intra_zone_in_fitted_profiles():
    network = default_network_model()
    profiler = NetworkProfiler(network)
    a100 = get_node_type("a2-highgpu-4g")
    intra = profiler.profile_pair(a100, a100, LinkClass.INTRA_ZONE)
    inter = profiler.profile_pair(a100, a100, LinkClass.INTER_REGION)
    assert inter.transfer_time(64e6) > intra.transfer_time(64e6)
