"""Unit tests for availability traces and their generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.availability import (
    AvailabilityEvent,
    AvailabilityTrace,
    AvailabilityTraceGenerator,
)


def test_event_validation():
    with pytest.raises(ValueError):
        AvailabilityEvent(-1.0, "z", "a2-highgpu-4g", 1)
    with pytest.raises(ValueError):
        AvailabilityEvent(0.0, "z", "a2-highgpu-4g", -1)


def test_available_at_steps():
    trace = AvailabilityTrace(events=[
        AvailabilityEvent(0.0, "z", "a2-highgpu-4g", 0),
        AvailabilityEvent(100.0, "z", "a2-highgpu-4g", 2),
        AvailabilityEvent(200.0, "z", "a2-highgpu-4g", 1),
    ], duration_s=300.0)
    assert trace.available_at(0.0, "z", "a2-highgpu-4g") == 0
    assert trace.available_at(150.0, "z", "a2-highgpu-4g") == 2
    assert trace.available_at(250.0, "z", "a2-highgpu-4g") == 1
    assert trace.available_at(50.0, "other", "a2-highgpu-4g") == 0
    assert trace.change_times() == [0.0, 100.0, 200.0]


def test_topology_at_reflects_counts():
    trace = AvailabilityTrace(events=[
        AvailabilityEvent(0.0, "us-central1-a", "a2-highgpu-4g", 2),
        AvailabilityEvent(50.0, "us-central1-b", "a2-highgpu-4g", 1),
    ], duration_s=100.0)
    topo = trace.topology_at(60.0)
    assert topo.node_count("us-central1-a", "a2-highgpu-4g") == 2
    assert topo.node_count("us-central1-b", "a2-highgpu-4g") == 1
    early = trace.topology_at(10.0)
    assert early.node_count("us-central1-b", "a2-highgpu-4g") == 0


def test_sample_and_gpu_series():
    trace = AvailabilityTrace(events=[
        AvailabilityEvent(0.0, "z", "a2-highgpu-4g", 1),
        AvailabilityEvent(600.0, "z", "a2-highgpu-4g", 3),
    ], duration_s=1200.0)
    nodes = trace.sample(step_s=600.0)[("z", "a2-highgpu-4g")]
    gpus = trace.gpu_series(step_s=600.0)[("z", "a2-highgpu-4g")]
    assert nodes == [1, 3, 3]
    assert gpus == [4, 12, 12]
    with pytest.raises(ValueError):
        trace.sample(step_s=0)


def test_slow_ramp_reaches_target_and_is_monotone():
    generator = AvailabilityTraceGenerator(seed=0)
    events = generator.slow_ramp("z", "a2-highgpu-4g", target_nodes=4,
                                 duration_s=8 * 3600)
    counts = [e.available_nodes for e in sorted(events, key=lambda e: e.time_s)]
    assert counts[0] == 0
    assert counts[-1] == 4
    assert all(b >= a for a, b in zip(counts, counts[1:]))


def test_fluctuating_stays_below_target():
    generator = AvailabilityTraceGenerator(seed=1)
    events = generator.fluctuating("z", "a2-highgpu-4g", target_nodes=4,
                                   duration_s=8 * 3600)
    assert max(e.available_nodes for e in events) < 4
    assert min(e.available_nodes for e in events) >= 0


def test_spot_preemptions_bounded_by_base():
    generator = AvailabilityTraceGenerator(seed=2)
    events = generator.spot_preemptions("z", "a2-highgpu-4g", base_nodes=5,
                                        duration_s=4 * 3600)
    assert events[0].available_nodes == 5
    assert all(0 <= e.available_nodes <= 5 for e in events)
    assert all(e.time_s <= 4 * 3600 for e in events)


def test_figure2_trace_has_two_zones():
    generator = AvailabilityTraceGenerator(seed=0)
    trace = generator.figure2_trace()
    zones = {zone for zone, _ in trace.pools}
    assert zones == {"us-central1-a", "us-central1-b"}
    series = trace.gpu_series(step_s=1800.0)
    ramp = series[("us-central1-a", "a2-highgpu-4g")]
    assert ramp[-1] == 8  # the slow-ramp zone eventually reaches the request


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), base=st.integers(1, 8))
def test_spot_preemption_property(seed, base):
    """Spot traces never exceed the base pool nor go negative."""
    generator = AvailabilityTraceGenerator(seed=seed)
    events = generator.spot_preemptions("z", "a2-highgpu-4g", base_nodes=base,
                                        duration_s=3600.0)
    assert all(0 <= e.available_nodes <= base for e in events)
