"""Shared fixtures for the test suite.

Environment construction (profiling every GPU type and fitting network
curves) is the most expensive part of a test, so commonly-used environments
are session-scoped.
"""

from __future__ import annotations

import pytest

from repro.core.simulator import build_environment
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec


@pytest.fixture(scope="session")
def opt_job() -> TrainingJobSpec:
    """OPT-350M with a small global batch (fast simulations)."""
    return TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=256,
                           sequence_length=2048)


@pytest.fixture(scope="session")
def neo_job() -> TrainingJobSpec:
    """GPT-Neo-2.7B with a small global batch."""
    return TrainingJobSpec(model=get_model("GPT-Neo-2.7B"), global_batch_size=256,
                           sequence_length=2048)


@pytest.fixture(scope="session")
def a100_topology() -> ClusterTopology:
    """8 nodes x 4 A100 in one zone."""
    return ClusterTopology.homogeneous("a2-highgpu-4g", 8)


@pytest.fixture(scope="session")
def mixed_topology() -> ClusterTopology:
    """4 A100 nodes + 4 V100 nodes in one zone."""
    return ClusterTopology.single_zone(
        "us-central1-a", {"a2-highgpu-4g": 4, "n1-standard-v100-4": 4})


@pytest.fixture(scope="session")
def geo_topology_2regions() -> ClusterTopology:
    """A100 nodes spread over two zones of two regions."""
    return ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 2},
        "us-central1-b": {"a2-highgpu-4g": 2},
        "us-west1-a": {"a2-highgpu-4g": 2},
    })


@pytest.fixture(scope="session")
def opt_env(opt_job, mixed_topology):
    """Environment profiled for OPT-350M over A100 + V100 node types."""
    return build_environment(opt_job, mixed_topology, seed=7)


@pytest.fixture(scope="session")
def opt_env_geo(opt_job, geo_topology_2regions):
    """Environment profiled for OPT-350M over the geo-distributed topology."""
    return build_environment(opt_job, geo_topology_2regions, seed=11)


@pytest.fixture(scope="session")
def neo_env(neo_job, mixed_topology):
    """Environment profiled for GPT-Neo-2.7B over A100 + V100 node types."""
    return build_environment(neo_job, mixed_topology, seed=13)
