"""Unit tests for communication-group construction."""

import pytest

from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.models.partition import uniform_partition
from repro.runtime.comm_groups import build_rank_topology


def test_uniform_plan_topology(opt_job):
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g",
                                           pipeline_parallel=2, data_parallel=2,
                                           tensor_parallel=2, microbatch_size=2)
    groups = build_rank_topology(plan)
    groups.validate()
    assert groups.world_size == 2 * 2 * 2
    assert len(groups.tensor_groups) == 4           # one per replica
    assert all(len(g) == 2 for g in groups.tensor_groups)
    assert len(groups.pipeline_groups) == 2         # one per data-parallel index
    assert len(groups.data_parallel_groups) == 2 * 2  # stages x shards
    for group in groups.data_parallel_groups:
        assert len(group) == plan.data_parallel


def test_heterogeneous_tp_groups(opt_job):
    partitions = uniform_partition(opt_job.model, 2)
    stages = [
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "z"),
                                    StageReplica("a2-highgpu-4g", 4, "z")]),
        StageConfig(partitions[1], [StageReplica("n1-standard-v100-4", 2, "z"),
                                    StageReplica("n1-standard-v100-4", 2, "z")]),
    ]
    plan = ParallelizationPlan(job=opt_job, stages=stages, microbatch_size=2)
    groups = build_rank_topology(plan)
    groups.validate()
    assert groups.world_size == 2 * 4 + 2 * 2
    sizes = sorted(len(g) for g in groups.tensor_groups)
    assert sizes == [2, 2, 4, 4]
    # Data-parallel groups exist for every shard of the widest replica, and
    # smaller replicas contribute a (replicated) shard to each.
    stage1_groups = [g for g in groups.data_parallel_groups
                     if any(groups.ranks[r].stage_index == 0 for r in g)]
    assert len(stage1_groups) == 4
    for group in stage1_groups:
        assert len(group) == 2


def test_groups_of_rank_and_assignments(opt_job):
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 2, 2, 2, 2)
    groups = build_rank_topology(plan)
    membership = groups.groups_of_rank(0)
    assert len(membership["tensor"]) == 1
    assert len(membership["pipeline"]) == 1
    assert len(membership["data_parallel"]) == 1
    with pytest.raises(IndexError):
        groups.groups_of_rank(groups.world_size)
    assignment = groups.ranks[0]
    assert assignment.stage_index == 0
    assert assignment.gpu_type == "A100-40"
    assert assignment.rank == 0


def test_validate_detects_corruption(opt_job):
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 2, 1, 2, 2)
    groups = build_rank_topology(plan)
    groups.tensor_groups[0] = groups.tensor_groups[1]
    with pytest.raises(ValueError):
        groups.validate()
