"""Unit tests for the collective-communication timing models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import (
    broadcast_time,
    hierarchical_allreduce_time,
    p2p_time,
    ring_allgather_time,
    ring_allreduce_time,
    ring_reduce_scatter_time,
)
from repro.hardware.network import LinkSpec


LINK = LinkSpec(bandwidth_gbps=80.0, latency_s=10e-6)  # 10 GB/s
SLOW = LinkSpec(bandwidth_gbps=8.0, latency_s=1e-3)    # 1 GB/s


def test_single_participant_costs_nothing():
    assert ring_allreduce_time(1e9, 1, LINK.transfer_time) == 0.0
    assert ring_allgather_time(1e9, 1, LINK.transfer_time) == 0.0
    assert ring_reduce_scatter_time(1e9, 1, LINK.transfer_time) == 0.0
    assert broadcast_time(1e9, 1, LINK.transfer_time) == 0.0


def test_zero_bytes_costs_nothing():
    assert ring_allreduce_time(0, 8, LINK.transfer_time) == 0.0
    assert p2p_time(0, LINK.transfer_time) == 0.0


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        ring_allreduce_time(-1, 2, LINK.transfer_time)
    with pytest.raises(ValueError):
        ring_allreduce_time(10, 0, LINK.transfer_time)
    with pytest.raises(ValueError):
        p2p_time(-1, LINK.transfer_time)
    with pytest.raises(ValueError):
        hierarchical_allreduce_time(10, [], LINK.transfer_time, LINK.transfer_time)


def test_allreduce_close_to_2x_bandwidth_bound_for_large_messages():
    message = 1e9  # 1 GB over 10 GB/s: lower bound 0.2 s for the 2(n-1)/n factor
    t = ring_allreduce_time(message, 8, LINK.transfer_time)
    assert t == pytest.approx(2 * (8 - 1) / 8 * message / 10e9, rel=0.05)


def test_allreduce_equals_reduce_scatter_plus_allgather():
    message = 256e6
    total = ring_allreduce_time(message, 4, LINK.transfer_time)
    rs = ring_reduce_scatter_time(message, 4, LINK.transfer_time)
    ag = ring_allgather_time(message, 4, LINK.transfer_time)
    assert total == pytest.approx(rs + ag)


def test_slower_link_takes_longer():
    assert ring_allreduce_time(1e8, 4, SLOW.transfer_time) > \
        ring_allreduce_time(1e8, 4, LINK.transfer_time)


def test_broadcast_scales_logarithmically():
    two = broadcast_time(1e8, 2, LINK.transfer_time)
    sixteen = broadcast_time(1e8, 16, LINK.transfer_time)
    assert sixteen == pytest.approx(4 * two)


def test_hierarchical_reduces_to_flat_ring_for_one_group():
    message = 64e6
    flat = ring_allreduce_time(message, 8, LINK.transfer_time)
    hier = hierarchical_allreduce_time(message, [8], LINK.transfer_time,
                                       SLOW.transfer_time)
    assert hier == pytest.approx(flat)


def test_hierarchical_bounded_by_slow_inter_group_link():
    message = 64e6
    hier = hierarchical_allreduce_time(message, [4, 4], LINK.transfer_time,
                                       SLOW.transfer_time)
    leaders_only = ring_allreduce_time(message, 2, SLOW.transfer_time)
    assert hier > leaders_only  # includes the local phases too


@settings(max_examples=50, deadline=None)
@given(message=st.floats(1e3, 1e9), participants=st.integers(2, 64))
def test_allreduce_monotone_in_message_size(message, participants):
    """All-reduce time is positive and grows with the message size."""
    t1 = ring_allreduce_time(message, participants, LINK.transfer_time)
    t2 = ring_allreduce_time(message * 2, participants, LINK.transfer_time)
    assert t1 > 0
    assert t2 > t1


@settings(max_examples=50, deadline=None)
@given(groups=st.lists(st.integers(1, 8), min_size=1, max_size=6),
       message=st.floats(1e4, 1e8))
def test_hierarchical_allreduce_property(groups, message):
    """Hierarchical all-reduce over any grouping is non-negative and finite."""
    t = hierarchical_allreduce_time(message, groups, LINK.transfer_time,
                                    SLOW.transfer_time)
    assert t >= 0.0
    if sum(groups) > 1 and message > 0:
        assert t > 0.0
