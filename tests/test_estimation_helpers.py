"""Unit tests for the estimator-accuracy experiment helpers."""

import pytest

from repro.experiments.estimation import (
    ESTIMATION_PLANNERS,
    build_samples,
    error_summary,
    estimate_memory,
    estimate_time,
    relative_error,
)


def test_relative_error_basic():
    assert relative_error(110.0, 100.0) == pytest.approx(10.0)
    assert relative_error(90.0, 100.0) == pytest.approx(10.0)
    assert relative_error(100.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        relative_error(1.0, 0.0)


def test_error_summary_statistics():
    summary = error_summary([1.0, 2.0, 3.0, 4.0, 100.0])
    assert summary["mean"] == pytest.approx(22.0)
    assert summary["median"] == 3.0
    assert summary["max"] == 100.0
    assert summary["p25"] <= summary["median"] <= summary["p75"]
    empty = error_summary([])
    assert all(v != v for v in empty.values())  # all NaN


def test_build_samples_returns_valid_plans(opt_env, opt_job, mixed_topology):
    samples = build_samples(opt_env, opt_job, mixed_topology, mixed_types=True,
                            max_samples=4)
    assert 1 <= len(samples) <= 4
    labels = {s.label for s in samples}
    assert len(labels) == len(samples)  # deduplicated configurations
    for sample in samples:
        assert sample.real_iteration_time_s > 0
        assert sample.real_peak_memory_bytes > 0
        # Heterogeneous topology + mixed_types -> plans actually mix types.
        assert len(sample.plan.gpus_by_type()) > 1


def test_estimate_time_and_memory_for_every_planner(opt_env, opt_job,
                                                    mixed_topology):
    samples = build_samples(opt_env, opt_job, mixed_topology, mixed_types=True,
                            max_samples=1)
    plan = samples[0].plan
    for planner in ESTIMATION_PLANNERS:
        t = estimate_time(planner, opt_env, plan)
        assert t > 0
        memory = estimate_memory(planner, opt_env, plan)
        if planner == "sailor":
            assert memory is not None and memory > 0
