"""Unit tests for the training-worker state machine."""

import pytest

from repro.runtime.comm_groups import RankAssignment
from repro.runtime.worker import TrainingWorker, WorkerState


def make_worker(rank=0):
    assignment = RankAssignment(rank=rank, stage_index=0, replica_index=0,
                                shard_index=0, node_type="a2-highgpu-4g",
                                gpu_type="A100-40", zone="us-central1-a",
                                tensor_parallel=4)
    return TrainingWorker(assignment=assignment)


def test_normal_lifecycle():
    worker = make_worker()
    assert worker.state is WorkerState.IDLE
    assert not worker.is_active
    worker.transition(WorkerState.INITIALIZING, 0.0)
    worker.transition(WorkerState.TRAINING, 1.0)
    assert worker.is_active
    worker.record_iterations(5)
    assert worker.completed_iterations == 5
    worker.transition(WorkerState.CLEANING_UP, 2.0)
    worker.transition(WorkerState.REPARTITIONING, 3.0)
    worker.transition(WorkerState.INITIALIZING, 4.0)
    worker.transition(WorkerState.TRAINING, 5.0)
    worker.record_iterations(3)
    assert worker.completed_iterations == 8
    assert [state for _, state in worker.history][:2] == [
        WorkerState.INITIALIZING, WorkerState.TRAINING]


def test_illegal_transitions_rejected():
    worker = make_worker()
    with pytest.raises(ValueError):
        worker.transition(WorkerState.TRAINING, 0.0)  # must initialise first
    worker.transition(WorkerState.INITIALIZING, 0.0)
    worker.transition(WorkerState.TRAINING, 1.0)
    with pytest.raises(ValueError):
        worker.transition(WorkerState.INITIALIZING, 2.0)
    worker.transition(WorkerState.STOPPED, 3.0)
    with pytest.raises(ValueError):
        worker.transition(WorkerState.TRAINING, 4.0)


def test_same_state_transition_is_noop():
    worker = make_worker()
    worker.transition(WorkerState.IDLE, 0.0)
    assert worker.history == []


def test_iteration_recording_requires_training_state():
    worker = make_worker()
    with pytest.raises(ValueError):
        worker.record_iterations(1)
    with pytest.raises(ValueError):
        worker.record_iterations(-1)
    worker.record_iterations(0)  # zero is always fine
    assert worker.rank == 0
