"""Unit tests for the GPU catalog."""

import pytest

from repro.hardware.gpus import GPUSpec, get_gpu, list_gpus, register_gpu


def test_catalog_contains_paper_gpus():
    for name in ("A100-40", "V100-16", "GH200-96", "TitanRTX-24",
                 "RTX2080-11", "RTX3090-24"):
        spec = get_gpu(name)
        assert spec.name == name


def test_a100_spec_values():
    a100 = get_gpu("A100-40")
    assert a100.memory_gb == 40.0
    assert a100.peak_tflops == 312.0
    assert a100.memory_bytes == 40 * 1024 ** 3
    assert a100.peak_flops == pytest.approx(312e12)


def test_v100_is_slower_and_smaller_than_a100():
    a100, v100 = get_gpu("A100-40"), get_gpu("V100-16")
    assert v100.peak_tflops < a100.peak_tflops
    assert v100.memory_gb < a100.memory_gb


def test_unknown_gpu_raises_keyerror_with_known_names():
    with pytest.raises(KeyError, match="unknown GPU type"):
        get_gpu("TPU-v5")


def test_list_gpus_sorted_and_nonempty():
    gpus = list_gpus()
    assert len(gpus) >= 6
    names = [g.name for g in gpus]
    assert names == sorted(names)


def test_register_custom_gpu_and_conflict_detection():
    custom = GPUSpec(name="TEST-GPU-1", memory_gb=48, peak_tflops=200,
                     mem_bandwidth_gbps=1000, intra_node_bw_gbps=100)
    register_gpu(custom)
    assert get_gpu("TEST-GPU-1") == custom
    # Re-registering the identical spec is fine.
    register_gpu(custom)
    conflicting = GPUSpec(name="TEST-GPU-1", memory_gb=24, peak_tflops=200,
                          mem_bandwidth_gbps=1000, intra_node_bw_gbps=100)
    with pytest.raises(ValueError, match="already registered"):
        register_gpu(conflicting)
    # Explicit overwrite is allowed.
    register_gpu(conflicting, overwrite=True)
    assert get_gpu("TEST-GPU-1").memory_gb == 24
