"""Property-based tests on core invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.plan import ParallelizationPlan
from repro.core.simulator import MemoryEstimator, SailorSimulator, TimingEstimator
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec


VALID_CONFIGS = st.tuples(
    st.sampled_from([1, 2, 4]),          # pipeline parallel
    st.sampled_from([1, 2, 4, 8]),       # data parallel
    st.sampled_from([1, 2, 4]),          # tensor parallel
    st.sampled_from([1, 2, 4]),          # microbatch size
)


@settings(max_examples=20, deadline=None)
@given(config=VALID_CONFIGS)
def test_plan_resource_accounting_consistent(opt_job, config):
    """GPU counts derived from stages and from the node allocation agree."""
    pp, dp, tp, mbs = config
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", pp, dp, tp, mbs)
    assert plan.total_gpus == pp * dp * tp
    allocation = plan.resource_allocation()
    assert allocation.total_gpus() >= plan.total_gpus
    assert allocation.total_gpus() <= plan.total_gpus + allocation.total_nodes() * 3
    assert sum(plan.gpus_by_type().values()) == plan.total_gpus


@settings(max_examples=15, deadline=None)
@given(config=VALID_CONFIGS)
def test_simulator_outputs_positive_and_consistent(opt_env, opt_job, config):
    """Iteration time, throughput, memory and cost are positive and coherent
    for every well-formed homogeneous plan."""
    pp, dp, tp, mbs = config
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", pp, dp, tp, mbs)
    evaluation = SailorSimulator(opt_env).evaluate(plan)
    assert evaluation.iteration_time_s > 0
    assert evaluation.throughput_iters_per_s > 0
    assert evaluation.cost_per_iteration_usd > 0
    assert evaluation.compute_cost_usd <= evaluation.cost_per_iteration_usd
    assert len(evaluation.peak_memory_bytes_per_stage) == pp
    assert all(m > 0 for m in evaluation.peak_memory_bytes_per_stage)


@settings(max_examples=15, deadline=None)
@given(pp=st.sampled_from([1, 2, 4]), tp=st.sampled_from([1, 2, 4]),
       mbs=st.sampled_from([1, 2]))
def test_memory_never_increases_with_tensor_parallelism(opt_env, opt_job, pp, tp, mbs):
    """Sharding a stage over more GPUs never increases the per-worker peak."""
    estimator = MemoryEstimator(opt_env)
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", pp, 2, tp, mbs)
    peaks = estimator.stage_peaks(plan)
    if tp > 1:
        smaller_tp = ParallelizationPlan.homogeneous(
            opt_job, "a2-highgpu-4g", pp, 2, tp // 2, mbs)
        smaller_peaks = estimator.stage_peaks(smaller_tp)
        assert max(peaks) <= max(smaller_peaks) * 1.001


@settings(max_examples=10, deadline=None)
@given(dp=st.sampled_from([1, 2, 4, 8]))
def test_pipeline_time_decreases_with_data_parallelism(opt_env, opt_job, dp):
    """With a fixed pipeline, more data parallelism never slows the pipeline
    phase (each pipeline processes fewer microbatches)."""
    estimator = TimingEstimator(opt_env)
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 2, dp, 4, 1)
    if dp > 1:
        smaller = ParallelizationPlan.homogeneous(
            opt_job, "a2-highgpu-4g", 2, dp // 2, 4, 1)
        assert estimator.breakdown(plan).pipeline_time_s <= \
            estimator.breakdown(smaller).pipeline_time_s * 1.001
