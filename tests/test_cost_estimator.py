"""Unit tests for the cost estimator."""

import pytest

from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.core.simulator.cost import CostEstimator
from repro.hardware.network import LinkClass
from repro.models.partition import uniform_partition


@pytest.fixture()
def estimator(opt_env):
    return CostEstimator(opt_env)


def test_compute_cost_scales_with_time_and_gpus(estimator, opt_job):
    small = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 2, 1, 4, 2)
    large = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 2, 4, 4, 2)
    assert estimator.compute_cost(small, 10.0) == pytest.approx(
        2 * estimator.compute_cost(small, 5.0))
    assert estimator.compute_cost(large, 10.0) == pytest.approx(
        4 * estimator.compute_cost(small, 10.0))
    with pytest.raises(ValueError):
        estimator.compute_cost(small, -1.0)


def test_single_zone_plan_has_no_egress_cost(estimator, opt_job):
    plan = ParallelizationPlan.homogeneous(opt_job, "a2-highgpu-4g", 4, 2, 4, 2)
    breakdown = estimator.breakdown(plan, 10.0)
    assert breakdown.communication_usd == 0.0
    assert breakdown.total_usd == pytest.approx(breakdown.compute_usd)


def geo_plan(job, zone_b="us-central1-b"):
    partitions = uniform_partition(job.model, 2)
    return ParallelizationPlan(job=job, stages=[
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "us-central1-a"),
                                    StageReplica("a2-highgpu-4g", 4, "us-central1-a")]),
        StageConfig(partitions[1], [StageReplica("a2-highgpu-4g", 4, zone_b),
                                    StageReplica("a2-highgpu-4g", 4, zone_b)]),
    ], microbatch_size=2)


def test_cross_zone_pipeline_traffic_is_charged(opt_env_geo, opt_job):
    estimator = CostEstimator(opt_env_geo)
    plan = geo_plan(opt_job)
    bytes_by_link = estimator.cross_zone_bytes(plan)
    assert bytes_by_link[LinkClass.INTER_ZONE] > 0
    assert bytes_by_link[LinkClass.INTER_REGION] == 0
    cost, _ = estimator.communication_cost(plan)
    assert cost > 0


def test_cross_region_more_expensive_than_cross_zone(opt_env_geo, opt_job):
    estimator = CostEstimator(opt_env_geo)
    same_region = estimator.communication_cost(geo_plan(opt_job, "us-central1-b"))[0]
    cross_region = estimator.communication_cost(geo_plan(opt_job, "us-west1-a"))[0]
    assert cross_region > same_region


def test_cross_zone_dp_sync_traffic_counted(opt_env_geo, opt_job):
    estimator = CostEstimator(opt_env_geo)
    partitions = uniform_partition(opt_job.model, 1)
    plan = ParallelizationPlan(job=opt_job, stages=[
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "us-central1-a"),
                                    StageReplica("a2-highgpu-4g", 4, "us-central1-b")]),
    ], microbatch_size=2)
    bytes_by_link = estimator.cross_zone_bytes(plan)
    assert bytes_by_link[LinkClass.INTER_ZONE] > 0
