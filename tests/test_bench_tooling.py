"""Tests for the benchmark tooling: the median-of-rounds compare gate and
the ``BENCH_history.jsonl`` recorder ``make bench`` appends to."""

import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def compare_bench():
    return _load("compare_bench")


@pytest.fixture(scope="module")
def bench_history():
    return _load("bench_history")


def _bench_file(path, stats_by_name):
    path.write_text(json.dumps({
        "benchmarks": [{"name": name, "stats": stats}
                       for name, stats in stats_by_name.items()]
    }))
    return str(path)


def test_compare_gates_on_median_not_mean_or_min(compare_bench, tmp_path,
                                                 capsys):
    """A noisy mean or a lucky min must not decide the verdict: the gate
    reads the median-of-rounds."""
    baseline = _bench_file(tmp_path / "base.json", {
        "bench_planner_x": {"median": 1.0, "min": 0.9, "mean": 1.1},
    })
    # Median regresses 2x while the min is flat and the mean improves.
    candidate = _bench_file(tmp_path / "new.json", {
        "bench_planner_x": {"median": 2.0, "min": 0.9, "mean": 0.5},
    })
    assert compare_bench.main([baseline, candidate]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out

    # Median flat, mean regressed: must pass.
    candidate_ok = _bench_file(tmp_path / "ok.json", {
        "bench_planner_x": {"median": 1.05, "min": 1.0, "mean": 9.0},
    })
    assert compare_bench.main([baseline, candidate_ok]) == 0


def test_compare_falls_back_to_mean_for_old_recordings(compare_bench,
                                                       tmp_path):
    """Recordings that predate the median field still load (mean stands in
    for both figures)."""
    stats = compare_bench.load_stats(_bench_file(tmp_path / "old.json", {
        "bench_planner_x": {"mean": 1.5},
    }))
    assert stats["bench_planner_x"] == {"median": 1.5, "min": 1.5,
                                        "rounds": 0}


def test_compare_ungated_benchmarks_never_fail(compare_bench, tmp_path):
    baseline = _bench_file(tmp_path / "base.json", {
        "bench_other": {"median": 1.0, "min": 1.0},
    })
    candidate = _bench_file(tmp_path / "new.json", {
        "bench_other": {"median": 5.0, "min": 5.0},
    })
    assert compare_bench.main([baseline, candidate]) == 0


def test_bench_history_appends_one_line_per_run(bench_history, tmp_path):
    bench = _bench_file(tmp_path / "bench.json", {
        "bench_planner_budget": {"median": 2.5, "min": 2.25, "mean": 2.6,
                                 "rounds": 3},
        "bench_planner_128": {"median": 0.8, "min": 0.75, "rounds": 1},
    })
    history = tmp_path / "history.jsonl"
    assert bench_history.main([bench, "--history", str(history)]) == 0
    assert bench_history.main([bench, "--history", str(history)]) == 0
    lines = history.read_text().strip().splitlines()
    assert len(lines) == 2
    record = json.loads(lines[0])
    assert set(record) == {"rev", "recorded_at", "source", "scale",
                           "benches"}
    assert record["benches"]["bench_planner_budget"] == {
        "median_s": 2.5, "min_s": 2.25, "rounds": 3}
    assert record["benches"]["bench_planner_128"]["median_s"] == 0.8
    # The revision is the repo's short git rev (or "unknown" off-git).
    assert record["rev"]


def test_bench_history_stamps_scale(bench_history, tmp_path, monkeypatch):
    """The record carries the BENCH_SCALE it was measured under: --scale
    wins, $BENCH_SCALE is the default, and off-env runs say 'unknown'."""
    bench = _bench_file(tmp_path / "bench.json", {
        "bench_planner_128": {"median": 0.8, "min": 0.75, "rounds": 1},
    })
    history = tmp_path / "history.jsonl"

    monkeypatch.delenv("BENCH_SCALE", raising=False)
    assert bench_history.main([bench, "--history", str(history)]) == 0
    monkeypatch.setenv("BENCH_SCALE", "smoke")
    assert bench_history.main([bench, "--history", str(history)]) == 0
    assert bench_history.main([bench, "--history", str(history),
                               "--scale", "full"]) == 0
    scales = [json.loads(line)["scale"]
              for line in history.read_text().strip().splitlines()]
    assert scales == ["unknown", "smoke", "full"]


def test_compare_treats_8192_point_as_full_scale_only(compare_bench,
                                                      tmp_path, capsys):
    """The 8192-GPU point is BENCH_SCALE=full-gated: its absence from a
    smoke candidate is a scale difference, not a dropped benchmark."""
    assert compare_bench.is_full_scale_only("bench_planner_8192_gpus")
    baseline = _bench_file(tmp_path / "base.json", {
        "bench_planner_x": {"median": 1.0, "min": 1.0},
        "bench_planner_8192_gpus": {"median": 30.0, "min": 28.0},
    })
    candidate = _bench_file(tmp_path / "new.json", {
        "bench_planner_x": {"median": 1.0, "min": 1.0},
    })
    assert compare_bench.main([baseline, candidate]) == 0
    out = capsys.readouterr().out
    assert "full-scale-only benches absent" in out
    assert "not in current run" not in out


def test_bench_history_rejects_empty_run(bench_history, tmp_path):
    bench = _bench_file(tmp_path / "bench.json", {})
    history = tmp_path / "history.jsonl"
    assert bench_history.main([bench, "--history", str(history)]) == 1
    assert not history.exists()
