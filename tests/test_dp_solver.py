"""Unit tests for the per-stage dynamic-programming solver."""

import pytest

from repro.core.dp_solver import (
    DPSolver,
    DPSolverConfig,
    StageOption,
    straggler_converged,
)
from repro.core.heuristics import HeuristicConfig, min_tp_per_stage, tp_options_for_stage
from repro.core.objectives import OptimizationGoal
from repro.models.partition import uniform_partition


def build_solver(env, job, pp=2, dp=2, mbs=2,
                 node_types=("a2-highgpu-4g", "n1-standard-v100-4"),
                 goal=OptimizationGoal.MAX_THROUGHPUT):
    partitions = uniform_partition(job.model, pp)
    config = HeuristicConfig()
    tp_req = min_tp_per_stage(job, partitions, list(node_types), mbs,
                              num_microbatches_in_flight_cap=pp, env=env,
                              config=config)
    tp_options = [tp_options_for_stage(stage, config) for stage in tp_req]
    return DPSolver(env=env, job=job, partitions=partitions,
                    tp_options_per_stage=tp_options, microbatch_size=mbs,
                    data_parallel=dp,
                    num_microbatches=job.num_microbatches(dp, mbs), goal=goal)


def test_stage_option_packing():
    option = StageOption(zone="z", node_type="a2-highgpu-4g", tensor_parallel=2)
    assert option.replicas_per_node == 2
    assert option.nodes_needed(1) == 1
    assert option.nodes_needed(3) == 2
    full = StageOption(zone="z", node_type="a2-highgpu-4g", tensor_parallel=4)
    assert full.replicas_per_node == 1
    assert full.nodes_needed(3) == 3


def test_solver_assigns_every_stage(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solution = solver.solve(resources)
    assert solution is not None
    assert len(solution.assignments) == 2
    for assignment in solution.assignments:
        assert assignment.total_replicas == 2
        assert assignment.compute_time_s > 0
    assert solution.max_stage_time_s >= max(
        a.compute_time_s for a in solution.assignments) - 1e-12
    assert solution.projected_iteration_time(solver.num_microbatches) > 0


def test_solver_respects_resource_limits(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=4)
    # Only one A100 node: four TP=4 replicas per stage cannot fit anywhere.
    resources = {("us-central1-a", "a2-highgpu-4g"): 1}
    assert solver.solve(resources) is None


def test_solver_uses_no_more_nodes_than_available(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    resources = {("us-central1-a", "a2-highgpu-4g"): 2,
                 ("us-central1-a", "n1-standard-v100-4"): 2}
    solution = solver.solve(resources)
    assert solution is not None
    used: dict = {}
    for assignment in solution.assignments:
        for key, count in assignment.nodes_used.items():
            used[key] = used.get(key, 0) + count
    for key, count in used.items():
        assert count <= resources[key]


def test_budget_constraint_prunes_solutions(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    resources = {("us-central1-a", "a2-highgpu-4g"): 4}
    unconstrained = solver.solve(resources)
    assert unconstrained is not None
    generous = solver.solve(resources, budget_per_iteration=1000.0)
    assert generous is not None
    tiny = solver.solve(resources, budget_per_iteration=1e-6)
    assert tiny is None


def test_min_cost_goal_prefers_cheaper_assignment(opt_env, opt_job):
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    throughput_solver = build_solver(opt_env, opt_job, pp=1, dp=2,
                                     goal=OptimizationGoal.MAX_THROUGHPUT)
    cost_solver = build_solver(opt_env, opt_job, pp=1, dp=2,
                               goal=OptimizationGoal.MIN_COST)
    fast = throughput_solver.solve(dict(resources))
    cheap = cost_solver.solve(dict(resources))
    assert fast is not None and cheap is not None
    assert cheap.cost_rate_usd_per_s <= fast.cost_rate_usd_per_s + 1e-12


def test_generate_combos_respects_region_boundary(opt_env_geo, opt_job):
    solver = build_solver(opt_env_geo, opt_job, pp=2, dp=2,
                          node_types=("a2-highgpu-4g",))
    resources = {("us-central1-a", "a2-highgpu-4g"): 2,
                 ("us-west1-a", "a2-highgpu-4g"): 2}
    combos = solver.generate_combos(0, resources)
    assert combos
    for placements in combos:
        regions = {solver.env.region_of(opt.zone) for opt, _ in placements}
        assert len(regions) == 1  # H5: one region per stage


def test_memoization_reuses_subproblems(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=4, dp=1)
    resources = {("us-central1-a", "a2-highgpu-4g"): 8}
    solver.solve(resources)
    explored_first = solver.nodes_explored
    solver.solve(resources)
    # The memo is cleared per call, so the second call explores a similar
    # number of nodes; within a call the memo keeps the count well below the
    # worst case of combos^stages.
    assert solver.nodes_explored <= 2 * explored_first
    config = DPSolverConfig(max_combos_per_stage=4)
    assert config.max_combos_per_stage == 4


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------

def test_config_rejects_nonpositive_budget_iterations():
    """Regression: max_budget_iterations <= 0 used to leave the straggler
    loop's result unbound (NameError) on budget-constrained solves."""
    with pytest.raises(ValueError):
        DPSolverConfig(max_budget_iterations=0)
    with pytest.raises(ValueError):
        DPSolverConfig(max_budget_iterations=-1)


def test_config_rejects_degenerate_knobs():
    with pytest.raises(ValueError):
        DPSolverConfig(max_combos_per_stage=0)
    with pytest.raises(ValueError):
        DPSolverConfig(max_mixed_types_per_stage=0)
    with pytest.raises(ValueError):
        DPSolverConfig(split_fractions=(0.5, 1.0))


def test_budget_solve_with_minimal_straggler_iterations(opt_env, opt_job):
    """One straggler iteration must yield a (possibly coarser) result, not
    crash -- the NameError regression scenario."""
    config = DPSolverConfig(max_budget_iterations=1)
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    solver.config = config
    resources = {("us-central1-a", "a2-highgpu-4g"): 4}
    solution = solver.solve(resources, budget_per_iteration=1000.0)
    assert solution is not None


# ---------------------------------------------------------------------------
# Pruning / caching equivalence
# ---------------------------------------------------------------------------

def brute_force_value(solver, resources, stage_index=0):
    """Plain recursive reference: no memo, no bounds, no incumbent.

    Returns the minimum projected objective value over every assignment the
    combo generator admits, or ``None`` when nothing fits.
    """
    from repro.core.dp_solver import DPSolution

    is_last = stage_index == len(solver.partitions) - 1
    best = None
    for placements in solver.generate_combos(stage_index, dict(resources)):
        assignment = solver.context.stage_assignment(
            solver.partitions[stage_index], solver.microbatch_size,
            solver.data_parallel, tuple(placements))
        if is_last:
            candidate = DPSolution(
                assignments=[assignment],
                max_stage_time_s=assignment.compute_time_s,
                sum_stage_time_s=assignment.compute_time_s,
                max_sync_time_s=assignment.sync_time_s,
                cost_rate_usd_per_s=assignment.cost_rate_usd_per_s)
        else:
            remaining = dict(resources)
            feasible = True
            for key, used in assignment.nodes_used.items():
                if remaining.get(key, 0) < used:
                    feasible = False
                    break
                remaining[key] -= used
            if not feasible:
                continue
            suffix = brute_force_value(solver, remaining, stage_index + 1)
            if suffix is None:
                continue
            candidate = solver._combine(assignment, suffix)
        if best is None or solver._value(candidate) < solver._value(best):
            best = candidate
    return best


SMALL_TOPOLOGIES = [
    # (label, resources)
    ("homogeneous", {("us-central1-a", "a2-highgpu-4g"): 4}),
    ("heterogeneous", {("us-central1-a", "a2-highgpu-4g"): 2,
                       ("us-central1-a", "n1-standard-v100-4"): 2}),
]


@pytest.mark.parametrize("label,resources", SMALL_TOPOLOGIES)
@pytest.mark.parametrize("pp,dp", [(1, 2), (2, 1), (2, 2)])
@pytest.mark.parametrize("goal", [OptimizationGoal.MAX_THROUGHPUT,
                                  OptimizationGoal.MIN_COST])
def test_pruned_solver_matches_brute_force(opt_env, opt_job, label, resources,
                                           pp, dp, goal):
    """Property: pruning + caching + clamping never change the optimum."""
    solver = build_solver(opt_env, opt_job, pp=pp, dp=dp, goal=goal)
    solution = solver.solve(dict(resources))
    reference = brute_force_value(solver, resources)
    if reference is None:
        assert solution is None
        return
    assert solution is not None
    nb = solver.num_microbatches
    assert solution.projected_iteration_time(nb) == pytest.approx(
        reference.projected_iteration_time(nb), rel=1e-12)
    assert solution.projected_cost(nb) == pytest.approx(
        reference.projected_cost(nb), rel=1e-12)


@pytest.mark.parametrize("pp,dp", [(2, 2), (3, 1), (2, 4)])
@pytest.mark.parametrize("budget", [None, 1000.0, 0.5])
def test_pruning_on_off_equivalence(opt_env, opt_job, pp, dp, budget):
    """The branch-and-bound solver returns the same projected time and cost
    as the exhaustive solver, with and without a budget constraint."""
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    pruned = build_solver(opt_env, opt_job, pp=pp, dp=dp)
    pruned.config = DPSolverConfig(enable_pruning=True)
    exhaustive = build_solver(opt_env, opt_job, pp=pp, dp=dp)
    exhaustive.config = DPSolverConfig(enable_pruning=False)

    a = pruned.solve(dict(resources), budget_per_iteration=budget)
    b = exhaustive.solve(dict(resources), budget_per_iteration=budget)
    if a is None or b is None:
        assert a is None and b is None
        return
    nb = pruned.num_microbatches
    assert a.projected_iteration_time(nb) == pytest.approx(
        b.projected_iteration_time(nb), rel=1e-12)
    assert a.projected_cost(nb) == pytest.approx(
        b.projected_cost(nb), rel=1e-12)
    assert pruned.stats.pruned_branches >= 0
    assert exhaustive.stats.pruned_branches == 0


def test_budget_dominance_properties(opt_env, opt_job):
    """Independent checks on the budget-dominance shortcut (which is part of
    the algorithm, not toggled by enable_pruning):

    * a budget at or above the unconstrained optimum's cost returns exactly
      the unconstrained optimum,
    * every budgeted solution respects its budget,
    * tightening the budget never improves the objective.
    """
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    nb = solver.num_microbatches

    unconstrained = solver.solve(dict(resources))
    assert unconstrained is not None
    base_cost = unconstrained.projected_cost(nb)
    base_time = unconstrained.projected_iteration_time(nb)

    generous = solver.solve(dict(resources),
                            budget_per_iteration=base_cost * 1.0001)
    assert generous is not None
    assert generous.projected_iteration_time(nb) == pytest.approx(
        base_time, rel=1e-12)
    assert generous.projected_cost(nb) == pytest.approx(base_cost, rel=1e-12)

    previous_time = None
    for fraction in (1.5, 1.0001, 0.8, 0.6, 0.4):
        budget = base_cost * fraction
        solution = solver.solve(dict(resources),
                                budget_per_iteration=budget)
        if solution is None:
            continue
        assert solution.projected_cost(nb) <= budget * (1 + 1e-9)
        if previous_time is not None:
            # Larger budgets were solved first: tightening must not improve.
            assert solution.projected_iteration_time(nb) >= \
                previous_time - 1e-12
        previous_time = solution.projected_iteration_time(nb)


# ---------------------------------------------------------------------------
# Interval-keyed budget memoisation
# ---------------------------------------------------------------------------

def brute_force_budget_value(solver, resources, budget):
    """True budget-constrained optimum over every full assignment.

    Enumerates the product of per-stage combos, filters on the projected
    cost and minimises the objective -- the reference the budgeted DP (a
    straggler *approximation*, section 4.2.3) can match but never beat.
    """
    from repro.core.dp_solver import DPSolution

    nb = solver.num_microbatches
    best = None

    def rec(stage, res, chain):
        nonlocal best
        is_last = stage == len(solver.partitions) - 1
        for placements in solver.generate_combos(stage, dict(res)):
            assignment = solver.context.stage_assignment(
                solver.partitions[stage], solver.microbatch_size,
                solver.data_parallel, tuple(placements))
            remaining = dict(res)
            feasible = True
            for key, used in assignment.nodes_used.items():
                if remaining.get(key, 0) < used:
                    feasible = False
                    break
                remaining[key] -= used
            if not feasible:
                continue
            if not is_last:
                rec(stage + 1, remaining, chain + [assignment])
                continue
            solution = DPSolution(
                assignments=[assignment],
                max_stage_time_s=assignment.compute_time_s,
                sum_stage_time_s=assignment.compute_time_s,
                max_sync_time_s=assignment.sync_time_s,
                cost_rate_usd_per_s=assignment.cost_rate_usd_per_s)
            for prev in reversed(chain):
                solution = solver._combine(prev, solution)
            if solution.projected_cost(nb) > budget:
                continue
            if best is None or solver._value(solution) < solver._value(best):
                best = solution

    rec(0, resources, [])
    return best


BUDGET_FRACTIONS = (1.5, 1.0001, 0.85, 0.7, 0.55, 0.4, 0.25)


@pytest.mark.parametrize("pp,dp", [(1, 2), (2, 2), (2, 4), (3, 1)])
def test_interval_memo_budget_sweep_against_brute_force(opt_env, opt_job,
                                                        pp, dp):
    """Sweep binding and non-binding budgets against brute force.

    * A non-binding budget (>= the unconstrained optimum's cost) must
      return exactly the unconstrained optimum, which is also the brute
      optimum -- identical plans, bitwise-equal values.
    * A binding budget's solution must respect the budget and can never
      beat the true (brute-force) budgeted optimum; when brute force finds
      nothing feasible, neither may the DP (every DP solution is a member
      of the brute-force space).
    """
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solver = build_solver(opt_env, opt_job, pp=pp, dp=dp)
    nb = solver.num_microbatches
    unconstrained = solver.solve(dict(resources))
    assert unconstrained is not None
    base_cost = unconstrained.projected_cost(nb)

    for fraction in BUDGET_FRACTIONS:
        budget = base_cost * fraction
        solution = solver.solve(dict(resources), budget_per_iteration=budget)
        reference = brute_force_budget_value(solver, dict(resources), budget)
        if reference is None:
            assert solution is None
            continue
        if budget >= base_cost:
            # Non-binding: dominance answers with the unconstrained optimum.
            assert solution is not None
            assert [a.placements for a in solution.assignments] == \
                [a.placements for a in unconstrained.assignments]
            assert solver._value(solution) == solver._value(reference)
            continue
        if solution is None:
            continue  # the approximation may miss a feasible corner
        assert solution.projected_cost(nb) <= budget * (1 + 1e-9)
        assert solver._value(solution) >= solver._value(reference) - 1e-12


def test_interval_memo_entry_count_drops_vs_per_budget_forking(opt_env,
                                                               opt_job):
    """A binding budget's straggler loop proposes many distinct rounded
    budgets per suffix state; interval entries must collapse them."""
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solver = build_solver(opt_env, opt_job, pp=2, dp=4)
    nb = solver.num_microbatches
    base_cost = solver.solve(dict(resources)).projected_cost(nb)

    solver.track_budget_forks = True
    solution = solver.solve(dict(resources),
                            budget_per_iteration=base_cost * 0.7)
    assert solution is not None
    entries = solver.budget_memo_entries()
    forks = len(solver.fork_keys)
    assert entries > 0
    # Per-rounded-budget keying would have stored (at least) one entry per
    # distinct (stage, state, rounded budget) query; intervals store fewer.
    assert entries < forks


def test_fork_keys_distinguish_budgets_closer_than_1e6(opt_env, opt_job):
    """Regression: fork bookkeeping used ``round(budget, 6)``, so two
    budgets 1e-8 apart collided into one key and the fork stat undercounted
    distinct straggler-loop queries.  Keyed on the exact float, two solves
    whose budgets differ below the old rounding grain must record different
    key sets."""
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solver = build_solver(opt_env, opt_job, pp=2, dp=4)
    nb = solver.num_microbatches
    budget = solver.solve(dict(resources)).projected_cost(nb) * 0.7

    solver.track_budget_forks = True
    assert solver.solve(dict(resources), budget_per_iteration=budget) \
        is not None
    first = set(solver.fork_keys)
    assert solver.solve(dict(resources),
                        budget_per_iteration=budget + 1e-8) is not None
    second = set(solver.fork_keys)
    assert first and second
    # Every budget threaded from the root differs by exactly 1e-8 between
    # the two solves -- below round(..., 6)'s resolution, which mapped both
    # runs onto identical key sets.
    assert first != second
    rounded = lambda keys: {(stage, key, round(budget, 6))
                            for stage, key, budget in keys}
    assert rounded(first) == rounded(second)


def test_straggler_convergence_tolerance_is_relative_plus_absolute():
    """Regression: a purely absolute 1e-12 tolerance is below float noise
    at iteration times of hundreds of seconds, so the straggler loop would
    re-iterate on rounding dust until max_budget_iterations ran out."""
    # Large magnitudes: a few-ulp excursion converges via the relative term
    # (the old `actual <= assumed + 1e-12` test rejected it).
    assert straggler_converged(500.0 + 2e-10, 500.0)
    assert not (500.0 + 2e-10 <= 500.0 + 1e-12)  # the old test, for contrast
    # A genuine straggler change at the same magnitude still iterates.
    assert not straggler_converged(500.0 + 1e-6, 500.0)
    # Small magnitudes keep the absolute floor.
    assert straggler_converged(1e-6 + 5e-13, 1e-6)
    assert not straggler_converged(1e-6 + 1e-11, 1e-6)
    # Exact fixpoints always converge.
    assert straggler_converged(0.25, 0.25)
    assert straggler_converged(0.0, 0.0)


@pytest.mark.parametrize("pp,dp", [(1, 2), (2, 2), (2, 4), (3, 1)])
def test_batched_budget_threading_matches_scalar_recursion(opt_env, opt_job,
                                                           pp, dp):
    """The per-layer batched straggler kernel must return bitwise-identical
    solutions to the scalar per-combo recursion across binding and
    non-binding budgets (both with the engine forced on)."""
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    probe = build_solver(opt_env, opt_job, pp=pp, dp=dp)
    nb = probe.num_microbatches
    unconstrained = probe.solve(dict(resources))
    if unconstrained is None:
        pytest.skip("nothing fits this (pp, dp) on the small pool")
    base_cost = unconstrained.projected_cost(nb)

    for fraction in BUDGET_FRACTIONS:
        budget = base_cost * fraction
        batched = build_solver(opt_env, opt_job, pp=pp, dp=dp)
        batched.config = DPSolverConfig(engine_min_states=0)
        batched.engine_min_states = 0
        scalar = build_solver(opt_env, opt_job, pp=pp, dp=dp)
        scalar.config = DPSolverConfig(engine_min_states=0,
                                       batched_budget_threading=False)
        scalar.engine_min_states = 0
        a = batched.solve(dict(resources), budget_per_iteration=budget)
        b = scalar.solve(dict(resources), budget_per_iteration=budget)
        assert (a is None) == (b is None)
        if a is None:
            continue
        assert [x.placements for x in a.assignments] == \
            [x.placements for x in b.assignments]
        for field in ("max_stage_time_s", "sum_stage_time_s",
                      "max_sync_time_s", "cost_rate_usd_per_s"):
            assert getattr(a, field) == getattr(b, field)  # bitwise


# ---------------------------------------------------------------------------
# Straggler convergence certificates (budget lower bounds)
# ---------------------------------------------------------------------------

def enumerate_solutions(solver, resources, stage_index=0):
    """Every complete assignment chain in the solver's search space, as
    ``DPSolution``s (no budget, no pruning -- the raw space the bound
    tables must lower-bound)."""
    from repro.core.dp_solver import DPSolution

    is_last = stage_index == len(solver.partitions) - 1
    solutions = []
    for placements in solver.generate_combos(stage_index, dict(resources)):
        assignment = solver.context.stage_assignment(
            solver.partitions[stage_index], solver.microbatch_size,
            solver.data_parallel, tuple(placements))
        if is_last:
            solutions.append(DPSolution(
                assignments=[assignment],
                max_stage_time_s=assignment.compute_time_s,
                sum_stage_time_s=assignment.compute_time_s,
                max_sync_time_s=assignment.sync_time_s,
                cost_rate_usd_per_s=assignment.cost_rate_usd_per_s))
            continue
        remaining = dict(resources)
        feasible = True
        for key, used in assignment.nodes_used.items():
            if remaining.get(key, 0) < used:
                feasible = False
                break
            remaining[key] -= used
        if not feasible:
            continue
        for suffix in enumerate_solutions(solver, remaining, stage_index + 1):
            solutions.append(solver._combine(assignment, suffix))
    return solutions


def _solver_root_state(solver):
    """The clamped root state exactly as ``solve`` derives it."""
    codec = solver._codec
    state = codec.root_state
    if solver._clamp_active[0]:
        state = codec.clamp(state, solver._caps_vec[0])
    return state


def test_budget_bounds_are_true_lower_bounds_over_random_pools(opt_env,
                                                               opt_job):
    """Property (hypothesis-style randomized sweep): the straggler and cost
    lower bounds never exceed *any* solution in the search space -- in
    particular not the minimum -- in both the engine-layer and the
    scalar-recursion bound implementations.  Admissibility is what makes
    certificate-answered budget solves outcome-identical to real ones."""
    import math
    import random

    rng = random.Random(20260729)
    checked = 0
    for _ in range(10):
        resources = {("us-central1-a", "a2-highgpu-4g"): rng.randint(0, 4),
                     ("us-central1-a", "n1-standard-v100-4"): rng.randint(0, 4)}
        resources = {key: count for key, count in resources.items() if count}
        if not resources:
            continue
        pp = rng.choice([1, 2, 3])
        dp = rng.choice([1, 2, 4])

        engine_solver = build_solver(opt_env, opt_job, pp=pp, dp=dp)
        engine_solver.config = DPSolverConfig(engine_min_states=0)
        engine_solver.engine_min_states = 0
        unconstrained = engine_solver.solve(dict(resources))
        solutions = enumerate_solutions(engine_solver, resources)
        nb = engine_solver.num_microbatches

        if engine_solver._engine is not None:
            bounds = engine_solver._engine_bounds()
            state = _solver_root_state(engine_solver)
            row = engine_solver._engine.row_for_key(0, state.tobytes())
            assert row is not None
            slb = bounds.straggler_lb[0][row]
            clb = bounds.cost_lb[0][row]
            mlb = bounds.sync_lb[0][row]
            if not solutions:
                assert unconstrained is None
                assert math.isinf(slb) and math.isinf(clb)
                assert math.isinf(mlb)
            for solution in solutions:
                assert slb <= solution.max_stage_time_s
                assert mlb <= solution.max_sync_time_s
                assert clb <= solution.projected_cost(nb)
                checked += 1

        scalar_solver = build_solver(opt_env, opt_job, pp=pp, dp=dp)
        assert scalar_solver.solve(dict(resources)) is not None or \
            unconstrained is None
        if not scalar_solver._vector_states:
            root = tuple(_solver_root_state(scalar_solver).tolist())
            s_slb, _, _, _, s_mlb, s_clb = scalar_solver._scalar_bound(
                0, root, root)
            if not solutions:
                assert math.isinf(s_slb) and math.isinf(s_clb)
                assert math.isinf(s_mlb)
            for solution in solutions:
                assert s_slb <= solution.max_stage_time_s
                assert s_mlb <= solution.max_sync_time_s
                assert s_clb <= solution.projected_cost(nb)
                checked += 1
    assert checked > 0  # the sweep must have exercised real pools


@pytest.mark.parametrize("pp,dp", [(1, 2), (2, 2), (2, 4), (3, 1)])
@pytest.mark.parametrize("engine_forced", [True, False])
def test_certificates_match_uncertified_recursion(opt_env, opt_job, pp, dp,
                                                  engine_forced):
    """Certificates (straggler/cost bounds, engine seeding, batched-layer
    resolve) must return bitwise-identical solutions to the plain scalar
    straggler recursion across binding and non-binding budgets, in both
    the engine and the tiny-pool (scalar) dispatch regimes."""
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    engine_min = 0 if engine_forced else 10**9
    probe = build_solver(opt_env, opt_job, pp=pp, dp=dp)
    nb = probe.num_microbatches
    unconstrained = probe.solve(dict(resources))
    if unconstrained is None:
        pytest.skip("nothing fits this (pp, dp) on the small pool")
    base_cost = unconstrained.projected_cost(nb)

    for fraction in BUDGET_FRACTIONS:
        budget = base_cost * fraction
        certified = build_solver(opt_env, opt_job, pp=pp, dp=dp)
        certified.config = DPSolverConfig(engine_min_states=engine_min,
                                          engine_min_states_budget=engine_min)
        certified.engine_min_states = engine_min
        certified.engine_min_states_budget = engine_min
        plain = build_solver(opt_env, opt_job, pp=pp, dp=dp)
        plain.config = DPSolverConfig(
            engine_min_states=engine_min,
            engine_min_states_budget=engine_min,
            enable_straggler_bound=False,
            engine_seeded_straggler=False, batched_layer_resolve=False,
            shared_backward=False)
        plain.engine_min_states = engine_min
        plain.engine_min_states_budget = engine_min
        a = certified.solve(dict(resources), budget_per_iteration=budget)
        b = plain.solve(dict(resources), budget_per_iteration=budget)
        assert (a is None) == (b is None)
        assert plain.stats.suffix_certified == 0
        if a is None:
            continue
        assert [x.placements for x in a.assignments] == \
            [x.placements for x in b.assignments]
        for field in ("max_stage_time_s", "sum_stage_time_s",
                      "max_sync_time_s", "cost_rate_usd_per_s"):
            assert getattr(a, field) == getattr(b, field)  # bitwise


def test_certificates_fire_and_are_counted(opt_env, opt_job):
    """A binding budget must exercise the certificates (nonzero
    ``suffix_certified``) and cut ``suffix_iterations`` vs the uncertified
    recursion -- the observable behind the straggler-tail claim."""
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    certified = build_solver(opt_env, opt_job, pp=2, dp=4)
    nb = certified.num_microbatches
    budget = certified.solve(dict(resources)).projected_cost(nb) * 0.55
    assert certified.solve(dict(resources), budget_per_iteration=budget) \
        is not None
    assert certified.stats.suffix_certified > 0
    assert certified.stats.suffix_iterations > 0

    plain = build_solver(opt_env, opt_job, pp=2, dp=4)
    plain.config = DPSolverConfig(enable_straggler_bound=False,
                                  engine_seeded_straggler=False,
                                  batched_layer_resolve=False)
    assert plain.solve(dict(resources), budget_per_iteration=budget) \
        is not None
    assert plain.stats.suffix_certified == 0
    assert plain.stats.suffix_iterations > certified.stats.suffix_iterations


def test_certificates_disabled_under_fork_tracking(opt_env, opt_job):
    """Fork tracking must observe every suffix query, so certificates (which
    remove queries) stay off while it is active."""
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solver = build_solver(opt_env, opt_job, pp=2, dp=4)
    nb = solver.num_microbatches
    budget = solver.solve(dict(resources)).projected_cost(nb) * 0.7
    solver.track_budget_forks = True
    assert solver.solve(dict(resources), budget_per_iteration=budget) \
        is not None
    assert not solver._certs_active
    assert solver.stats.suffix_certified == 0


def test_interval_memo_repeat_solves_are_deterministic(opt_env, opt_job):
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solver = build_solver(opt_env, opt_job, pp=2, dp=4)
    nb = solver.num_microbatches
    budget = solver.solve(dict(resources)).projected_cost(nb) * 0.7
    first = solver.solve(dict(resources), budget_per_iteration=budget)
    second = solver.solve(dict(resources), budget_per_iteration=budget)
    assert first is not None and second is not None
    assert [a.placements for a in first.assignments] == \
        [a.placements for a in second.assignments]


def test_pruning_on_off_equivalence_two_zone(opt_env_geo, opt_job):
    """Same equivalence on a 2-zone heterogeneous-geography topology."""
    resources = {("us-central1-a", "a2-highgpu-4g"): 2,
                 ("us-west1-a", "a2-highgpu-4g"): 2}
    pruned = build_solver(opt_env_geo, opt_job, pp=2, dp=2,
                          node_types=("a2-highgpu-4g",))
    exhaustive = build_solver(opt_env_geo, opt_job, pp=2, dp=2,
                              node_types=("a2-highgpu-4g",))
    exhaustive.config = DPSolverConfig(enable_pruning=False)
    a = pruned.solve(dict(resources))
    b = exhaustive.solve(dict(resources))
    assert (a is None) == (b is None)
    if a is not None:
        nb = pruned.num_microbatches
        assert a.projected_iteration_time(nb) == pytest.approx(
            b.projected_iteration_time(nb), rel=1e-12)
        reference = brute_force_value(pruned, resources)
        assert a.projected_iteration_time(nb) == pytest.approx(
            reference.projected_iteration_time(nb), rel=1e-12)
