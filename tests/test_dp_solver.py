"""Unit tests for the per-stage dynamic-programming solver."""

import pytest

from repro.core.dp_solver import DPSolver, DPSolverConfig, StageOption
from repro.core.heuristics import HeuristicConfig, min_tp_per_stage, tp_options_for_stage
from repro.core.objectives import OptimizationGoal
from repro.models.partition import uniform_partition


def build_solver(env, job, pp=2, dp=2, mbs=2,
                 node_types=("a2-highgpu-4g", "n1-standard-v100-4"),
                 goal=OptimizationGoal.MAX_THROUGHPUT):
    partitions = uniform_partition(job.model, pp)
    config = HeuristicConfig()
    tp_req = min_tp_per_stage(job, partitions, list(node_types), mbs,
                              num_microbatches_in_flight_cap=pp, env=env,
                              config=config)
    tp_options = [tp_options_for_stage(stage, config) for stage in tp_req]
    return DPSolver(env=env, job=job, partitions=partitions,
                    tp_options_per_stage=tp_options, microbatch_size=mbs,
                    data_parallel=dp,
                    num_microbatches=job.num_microbatches(dp, mbs), goal=goal)


def test_stage_option_packing():
    option = StageOption(zone="z", node_type="a2-highgpu-4g", tensor_parallel=2)
    assert option.replicas_per_node == 2
    assert option.nodes_needed(1) == 1
    assert option.nodes_needed(3) == 2
    full = StageOption(zone="z", node_type="a2-highgpu-4g", tensor_parallel=4)
    assert full.replicas_per_node == 1
    assert full.nodes_needed(3) == 3


def test_solver_assigns_every_stage(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    solution = solver.solve(resources)
    assert solution is not None
    assert len(solution.assignments) == 2
    for assignment in solution.assignments:
        assert assignment.total_replicas == 2
        assert assignment.compute_time_s > 0
    assert solution.max_stage_time_s >= max(
        a.compute_time_s for a in solution.assignments) - 1e-12
    assert solution.projected_iteration_time(solver.num_microbatches) > 0


def test_solver_respects_resource_limits(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=4)
    # Only one A100 node: four TP=4 replicas per stage cannot fit anywhere.
    resources = {("us-central1-a", "a2-highgpu-4g"): 1}
    assert solver.solve(resources) is None


def test_solver_uses_no_more_nodes_than_available(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    resources = {("us-central1-a", "a2-highgpu-4g"): 2,
                 ("us-central1-a", "n1-standard-v100-4"): 2}
    solution = solver.solve(resources)
    assert solution is not None
    used: dict = {}
    for assignment in solution.assignments:
        for key, count in assignment.nodes_used.items():
            used[key] = used.get(key, 0) + count
    for key, count in used.items():
        assert count <= resources[key]


def test_budget_constraint_prunes_solutions(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    resources = {("us-central1-a", "a2-highgpu-4g"): 4}
    unconstrained = solver.solve(resources)
    assert unconstrained is not None
    generous = solver.solve(resources, budget_per_iteration=1000.0)
    assert generous is not None
    tiny = solver.solve(resources, budget_per_iteration=1e-6)
    assert tiny is None


def test_min_cost_goal_prefers_cheaper_assignment(opt_env, opt_job):
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    throughput_solver = build_solver(opt_env, opt_job, pp=1, dp=2,
                                     goal=OptimizationGoal.MAX_THROUGHPUT)
    cost_solver = build_solver(opt_env, opt_job, pp=1, dp=2,
                               goal=OptimizationGoal.MIN_COST)
    fast = throughput_solver.solve(dict(resources))
    cheap = cost_solver.solve(dict(resources))
    assert fast is not None and cheap is not None
    assert cheap.cost_rate_usd_per_s <= fast.cost_rate_usd_per_s + 1e-12


def test_generate_combos_respects_region_boundary(opt_env_geo, opt_job):
    solver = build_solver(opt_env_geo, opt_job, pp=2, dp=2,
                          node_types=("a2-highgpu-4g",))
    resources = {("us-central1-a", "a2-highgpu-4g"): 2,
                 ("us-west1-a", "a2-highgpu-4g"): 2}
    combos = solver.generate_combos(0, resources)
    assert combos
    for placements in combos:
        regions = {solver.env.region_of(opt.zone) for opt, _ in placements}
        assert len(regions) == 1  # H5: one region per stage


def test_memoization_reuses_subproblems(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=4, dp=1)
    resources = {("us-central1-a", "a2-highgpu-4g"): 8}
    solver.solve(resources)
    explored_first = solver.nodes_explored
    solver.solve(resources)
    # The memo is cleared per call, so the second call explores a similar
    # number of nodes; within a call the memo keeps the count well below the
    # worst case of combos^stages.
    assert solver.nodes_explored <= 2 * explored_first
    config = DPSolverConfig(max_combos_per_stage=4)
    assert config.max_combos_per_stage == 4
