"""Unit tests for the fault-injection harness (scenarios + serialization)."""

import pytest

from repro.hardware.availability import AvailabilityTraceGenerator
from repro.runtime.faults import (
    FaultEvent,
    FaultScenarioGenerator,
    FaultTrace,
)

POOLS = {("us-central1-a", "a2-highgpu-4g"): 4,
         ("us-central1-a", "n1-standard-v100-4"): 4,
         ("us-central1-b", "a2-highgpu-4g"): 2}


# -- availability-layer scenario primitives -----------------------------------

def test_preemption_burst_loses_then_recovers():
    generator = AvailabilityTraceGenerator(seed=0)
    events = generator.preemption_burst("z", "a2-highgpu-4g", base_nodes=4,
                                        at_s=100.0, burst_size=3,
                                        spacing_s=10.0, recovery_s=600.0)
    counts = [e.available_nodes for e in events]
    assert counts == [3, 2, 1, 4]
    assert events[0].time_s == 100.0
    assert events[-1].time_s == 100.0 + 20.0 + 600.0
    assert all(0 <= c <= 4 for c in counts)


def test_quota_cut_steps_down_and_restores():
    generator = AvailabilityTraceGenerator(seed=0)
    events = generator.quota_cut("z", "a2-highgpu-4g", base_nodes=8,
                                 at_s=0.0, cut_fraction=0.5,
                                 restore_after_s=100.0)
    assert [e.available_nodes for e in events] == [4, 8]
    no_restore = generator.quota_cut("z", "a2-highgpu-4g", base_nodes=8,
                                     at_s=0.0, cut_fraction=0.25,
                                     restore_after_s=None)
    assert [e.available_nodes for e in no_restore] == [6]


def test_node_flap_alternates():
    generator = AvailabilityTraceGenerator(seed=0)
    events = generator.node_flap("z", "a2-highgpu-4g", base_nodes=4,
                                 at_s=0.0, period_s=100.0, cycles=2)
    assert [e.available_nodes for e in events] == [3, 4, 3, 4]
    assert len(events) == 4


def test_zone_outage_hits_every_pool_of_the_zone_simultaneously():
    generator = AvailabilityTraceGenerator(seed=0)
    events = generator.zone_outage(POOLS, "us-central1-a", at_s=50.0,
                                   outage_s=500.0)
    outage = [e for e in events if e.available_nodes == 0]
    assert {e.node_type for e in outage} == {"a2-highgpu-4g",
                                            "n1-standard-v100-4"}
    assert all(e.time_s == 50.0 for e in outage)
    assert all(e.zone == "us-central1-a" for e in events)
    recovered = [e for e in events if e.time_s == 550.0]
    assert sorted(e.available_nodes for e in recovered) == [4, 4]


# -- labelled fault scenarios -------------------------------------------------

def test_fault_event_validation_and_round_trip():
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "initial", "z", "a2-highgpu-4g", 1)
    with pytest.raises(ValueError):
        FaultEvent(0.0, "initial", "z", "a2-highgpu-4g", -1)
    event = FaultEvent(5.0, "quota_cut", "z", "a2-highgpu-4g", 2)
    assert FaultEvent.from_dict(event.to_dict()) == event


def test_scenarios_are_labelled_with_their_kind():
    generator = FaultScenarioGenerator(seed=0)
    assert all(e.kind == "preemption_burst" for e in generator.preemption_burst(
        "z", "a2-highgpu-4g", 4, at_s=0.0, burst_size=2))
    assert all(e.kind == "quota_cut" for e in generator.quota_cut(
        "z", "a2-highgpu-4g", 4, at_s=0.0))
    assert all(e.kind == "node_flap" for e in generator.node_flap(
        "z", "a2-highgpu-4g", 4, at_s=0.0))
    assert all(e.kind == "zone_outage" for e in generator.zone_outage(
        POOLS, "us-central1-a", at_s=0.0))


def test_mid_drain_preemption_lands_inside_the_drain_window():
    generator = FaultScenarioGenerator(seed=0)
    events = generator.mid_drain_preemption(
        "z", "a2-highgpu-4g", base_nodes=4, drain_started_s=1000.0,
        drain_duration_s=200.0, lost_nodes=2, recovery_s=300.0)
    assert events[0].time_s == 1100.0      # midpoint of [1000, 1200)
    assert 1000.0 < events[0].time_s < 1200.0
    assert events[0].available_nodes == 2
    assert events[0].kind == "mid_drain_preemption"
    assert events[1].time_s == 1400.0
    assert events[1].available_nodes == 4
    with pytest.raises(ValueError):
        generator.mid_drain_preemption("z", "a2-highgpu-4g", 4,
                                       drain_started_s=0.0,
                                       drain_duration_s=0.0)


def test_price_move_event_round_trips_and_validates_multiplier():
    with pytest.raises(ValueError):
        FaultEvent(0.0, "price_move", "z", "a2-highgpu-4g", 4,
                   price_multiplier=0.0)
    with pytest.raises(ValueError):
        FaultEvent(0.0, "price_move", "z", "a2-highgpu-4g", 4,
                   price_multiplier=-2.0)
    event = FaultEvent(60.0, "price_move", "z", "a2-highgpu-4g", 4,
                       price_multiplier=2.5)
    assert FaultEvent.from_dict(event.to_dict()) == event
    # The field is emitted only when set, so availability-only traces stay
    # byte-identical to format version 1 documents.
    plain = FaultEvent(5.0, "quota_cut", "z", "a2-highgpu-4g", 2)
    assert "price_multiplier" not in plain.to_dict()
    assert FaultEvent.from_dict(plain.to_dict()).price_multiplier is None


def test_price_move_scenario_emits_move_and_revert():
    generator = FaultScenarioGenerator(seed=0)
    events = generator.price_move("z", "a2-highgpu-4g", base_nodes=4,
                                  at_s=600.0, multiplier=3.0,
                                  revert_after_s=1200.0)
    assert [e.kind for e in events] == ["price_move", "price_move"]
    assert [e.price_multiplier for e in events] == [3.0, 1.0]
    assert [e.time_s for e in events] == [600.0, 1800.0]
    # Availability is untouched: replaying the step function alone is a
    # no-op, the pricing perturbation lives entirely in the multiplier.
    assert all(e.available_nodes == 4 for e in events)
    solo = generator.price_move("z", "a2-highgpu-4g", 4, at_s=0.0,
                                multiplier=0.5)
    assert len(solo) == 1
    assert solo[0].price_multiplier == 0.5
    with pytest.raises(ValueError):
        generator.price_move("z", "a2-highgpu-4g", 4, at_s=0.0,
                             multiplier=0.0)


# -- fault traces -------------------------------------------------------------

def test_trace_sorts_events_and_groups_simultaneous_ones():
    trace = FaultTrace(events=[
        FaultEvent(100.0, "zone_outage", "a", "a2-highgpu-4g", 0),
        FaultEvent(0.0, "initial", "a", "a2-highgpu-4g", 4),
        FaultEvent(100.0, "zone_outage", "a", "n1-standard-v100-4", 0),
    ], duration_s=200.0)
    assert [e.time_s for e in trace.events] == [0.0, 100.0, 100.0]
    groups = trace.grouped_events()
    assert [t for t, _ in groups] == [0.0, 100.0]
    assert len(groups[1][1]) == 2
    assert trace.pools == [("a", "a2-highgpu-4g"), ("a", "n1-standard-v100-4")]


def test_trace_to_availability_trace_applies_steps():
    trace = FaultTrace(events=[
        FaultEvent(0.0, "initial", "a", "a2-highgpu-4g", 4),
        FaultEvent(100.0, "quota_cut", "a", "a2-highgpu-4g", 2),
    ], duration_s=200.0)
    availability = trace.to_availability_trace()
    assert availability.available_at(50.0, "a", "a2-highgpu-4g") == 4
    assert availability.available_at(150.0, "a", "a2-highgpu-4g") == 2


def test_trace_json_round_trip_is_exact():
    trace = FaultScenarioGenerator(seed=5).churn_trace(POOLS, num_events=80)
    text = trace.to_json()
    restored = FaultTrace.from_json(text)
    assert restored == trace
    assert restored.to_json() == text


def test_trace_rejects_newer_format():
    with pytest.raises(ValueError):
        FaultTrace.from_dict({"format_version": 99, "events": []})


# -- churn trace generation ---------------------------------------------------

def test_churn_trace_has_exact_event_count_and_initials():
    trace = FaultScenarioGenerator(seed=0).churn_trace(
        POOLS, duration_s=4 * 3600.0, num_events=200)
    assert len(trace.events) == 200
    initials = [e for e in trace.events if e.kind == "initial"]
    assert len(initials) == len(POOLS)
    assert all(e.time_s == 0.0 for e in initials)
    assert all(e.time_s < trace.duration_s for e in trace.events)
    kinds = {e.kind for e in trace.events}
    assert kinds >= {"initial", "preemption_burst", "quota_cut", "node_flap"}


def test_churn_trace_same_seed_is_byte_identical():
    first = FaultScenarioGenerator(seed=42).churn_trace(POOLS, num_events=150)
    second = FaultScenarioGenerator(seed=42).churn_trace(POOLS, num_events=150)
    assert first == second
    assert first.to_json() == second.to_json()


def test_churn_trace_different_seeds_differ():
    first = FaultScenarioGenerator(seed=0).churn_trace(POOLS, num_events=150)
    second = FaultScenarioGenerator(seed=1).churn_trace(POOLS, num_events=150)
    assert first != second


def test_churn_trace_validates_inputs():
    generator = FaultScenarioGenerator(seed=0)
    with pytest.raises(ValueError):
        generator.churn_trace({}, num_events=10)
    with pytest.raises(ValueError):
        generator.churn_trace(POOLS, num_events=1)


def test_generator_seed_determinism_across_scenario_sequences():
    """A *sequence* of generator calls replays identically under one seed."""
    def sequence(seed):
        generator = FaultScenarioGenerator(seed=seed)
        events = []
        events += generator.preemption_burst("z", "a2-highgpu-4g", 4, at_s=0.0)
        events += generator.node_flap("z", "a2-highgpu-4g", 4, at_s=500.0,
                                      cycles=2)
        events += generator.quota_cut("z", "a2-highgpu-4g", 4, at_s=900.0)
        return events

    assert sequence(7) == sequence(7)
    assert sequence(7) != sequence(8)
