"""Unit tests for the per-worker memory estimator."""

import pytest

from repro.core.plan import ParallelizationPlan
from repro.core.simulator.memory import MemoryEstimator
from repro.models.partition import uniform_partition


@pytest.fixture()
def estimator(opt_env):
    return MemoryEstimator(opt_env)


def make_plan(job, pp=4, dp=2, tp=4, mbs=2, node="a2-highgpu-4g"):
    return ParallelizationPlan.homogeneous(job, node, pp, dp, tp, mbs)


def test_stage_peaks_positive_and_descending_with_stage_index(estimator, opt_job):
    plan = make_plan(opt_job)
    peaks = estimator.stage_peaks(plan)
    assert len(peaks) == plan.pipeline_parallel
    assert all(p > 0 for p in peaks)
    # 1F1B keeps more microbatches in flight on earlier stages; the first
    # stage also holds the embedding, so it peaks highest.
    assert peaks[0] == max(peaks)


def test_memory_breakdown_components(estimator, opt_job):
    plan = make_plan(opt_job)
    stage = plan.stages[0]
    breakdown = estimator.replica_memory(plan, stage, stage.replicas[0])
    assert breakdown.model_bytes > 0
    assert breakdown.activation_bytes > 0
    assert breakdown.peak_bytes == pytest.approx(
        breakdown.model_bytes + breakdown.activation_bytes + breakdown.overhead_bytes)
    assert 0 < breakdown.utilization < 1
    assert breakdown.fits


def test_higher_tp_reduces_per_worker_memory(estimator, opt_job):
    small_tp = make_plan(opt_job, tp=1, dp=2)
    large_tp = make_plan(opt_job, tp=4, dp=2)
    assert max(estimator.stage_peaks(large_tp)) < max(estimator.stage_peaks(small_tp))


def test_larger_microbatch_increases_memory(estimator, opt_job):
    small = make_plan(opt_job, mbs=1)
    large = make_plan(opt_job, mbs=8)
    assert max(estimator.stage_peaks(large)) > max(estimator.stage_peaks(small))


def test_oom_detection_on_v100_for_memory_hungry_plan(estimator, neo_job):
    # GPT-Neo-2.7B with TP=1 cannot fit on a 16 GB V100.
    plan = ParallelizationPlan.homogeneous(neo_job, "n1-standard-v100-4",
                                           pipeline_parallel=1, data_parallel=2,
                                           tensor_parallel=1, microbatch_size=1)
    oom = estimator.oom_stages(plan)
    assert oom == [0]
    assert not estimator.plan_fits(plan)


def test_valid_plan_has_no_oom_stages(estimator, opt_job):
    plan = make_plan(opt_job)
    assert estimator.oom_stages(plan) == []
    assert estimator.plan_fits(plan)


def test_min_tensor_parallel_monotone_in_model_size(estimator, opt_job, neo_job):
    partition_small = uniform_partition(opt_job.model, 1)[0]
    partition_large = uniform_partition(neo_job.model, 1)[0]
    degrees = [1, 2, 4]
    small_tp = estimator.min_tensor_parallel(
        opt_job, partition_small, "A100-40", 1, 1, degrees)
    large_tp = estimator.min_tensor_parallel(
        neo_job, partition_large, "A100-40", 1, 1, degrees)
    assert small_tp is not None and large_tp is not None
    assert large_tp >= small_tp


def test_min_tensor_parallel_returns_none_when_nothing_fits(estimator, neo_job):
    partition = uniform_partition(neo_job.model, 1)[0]
    result = estimator.min_tensor_parallel(
        neo_job, partition, "V100-16", 8, 1, [1, 2, 4])
    assert result is None


def test_activation_checkpointing_reduces_activation_memory(opt_env, opt_job):
    from dataclasses import replace

    estimator = MemoryEstimator(opt_env)
    plan = make_plan(opt_job, mbs=8)
    ckpt_job = replace(opt_job, activation_checkpointing=True)
    ckpt_plan = make_plan(ckpt_job, mbs=8)
    assert max(estimator.stage_peaks(ckpt_plan)) < max(estimator.stage_peaks(plan))
