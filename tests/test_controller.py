"""Integration tests for the training controller."""

import pytest

from repro.core.objectives import Objective
from repro.core.planner import SailorPlanner
from repro.hardware.topology import ClusterTopology
from repro.runtime.controller import (
    DegradationTier,
    ReplanPolicy,
    TrainingController,
)
from repro.runtime.worker import WorkerState


@pytest.fixture()
def controller(opt_env, opt_job):
    return TrainingController(env=opt_env, job=opt_job,
                              objective=Objective.max_throughput())


def make_controller(opt_env, opt_job, policy, **kwargs):
    return TrainingController(env=opt_env, job=opt_job,
                              objective=Objective.max_throughput(),
                              policy=policy, **kwargs)


def small_topology(nodes=2):
    return ClusterTopology.homogeneous("a2-highgpu-4g", nodes)


def test_start_deploys_plan_and_workers(controller):
    event = controller.start(small_topology(4), time_s=0.0)
    assert event is not None
    assert event.reason == "initial deployment"
    assert controller.current_plan is not None
    assert controller.current_groups is not None
    assert len(controller.workers) == controller.current_plan.total_gpus
    assert all(w.state is WorkerState.TRAINING for w in controller.workers)
    assert event.breakdown.planning_s == pytest.approx(
        event.planner_result.search_time_s)


def test_start_with_empty_topology_keeps_job_idle(controller):
    event = controller.start(ClusterTopology(), time_s=0.0)
    assert event is None
    assert controller.current_plan is None
    assert controller.workers == []


def test_scale_up_triggers_reconfiguration(controller):
    controller.start(small_topology(2), time_s=0.0)
    before_gpus = controller.current_plan.total_gpus
    event = controller.handle_availability_change(small_topology(6), time_s=60.0)
    assert event is not None
    assert event.old_gpus == before_gpus
    assert event.new_gpus >= before_gpus
    assert controller.current_plan.total_gpus == event.new_gpus
    assert len(controller.events) == 2


def test_scale_down_replans_to_fit(controller):
    controller.start(small_topology(6), time_s=0.0)
    event = controller.handle_availability_change(small_topology(1), time_s=60.0)
    assert event is not None
    assert controller.current_plan.total_gpus <= 4
    assert controller.current_plan.resource_allocation().fits_within(
        small_topology(1))


def test_losing_all_resources_stops_workers(controller):
    controller.start(small_topology(2), time_s=0.0)
    event = controller.handle_availability_change(ClusterTopology(), time_s=30.0)
    assert event is None
    assert controller.current_plan is None
    assert controller.workers == []


def test_no_action_when_change_does_not_matter(controller):
    controller.start(small_topology(4), time_s=0.0)
    plan_before = controller.current_plan
    # Same topology again: the current plan still fits and no better plan
    # exists, so nothing should change.
    event = controller.handle_availability_change(small_topology(4), time_s=30.0)
    assert event is None
    assert controller.current_plan is plan_before
    assert controller.decisions[-1].action == "kept"
    assert controller.decisions[-1].tier is DegradationTier.CONTINUE


# -- observability: trigger causes -------------------------------------------


def test_events_carry_trigger_cause(controller):
    start_event = controller.start(small_topology(2), time_s=0.0)
    assert start_event.trigger == "initial deployment"
    event = controller.handle_availability_change(
        small_topology(6), time_s=60.0, cause="quota_cut")
    assert event is not None
    assert event.trigger == "quota_cut"
    assert controller.decisions[-1].trigger == "quota_cut"


# -- edge cases surfaced by fault injection ----------------------------------


def test_simultaneous_multi_pool_swap_with_equal_totals(opt_env, opt_job):
    """Zone pool A loses what pool B gains: the GPU total is unchanged but
    the incumbent plan no longer fits and the controller must react."""
    controller = TrainingController(env=opt_env, job=opt_job,
                                    objective=Objective.max_throughput())
    before = ClusterTopology.single_zone("us-central1-a",
                                         {"a2-highgpu-4g": 4})
    after = ClusterTopology.single_zone(
        "us-central1-a", {"a2-highgpu-4g": 2, "n1-standard-v100-4": 2})
    controller.start(before, time_s=0.0)
    assert before.total_gpus() == after.total_gpus()
    assert not controller._plan_still_fits(after)
    event = controller.handle_availability_change(after, time_s=60.0,
                                                  cause="preemption_burst")
    assert controller.current_plan is not None
    assert controller.current_plan.resource_allocation().fits_within(after)
    if event is not None:
        assert event.tier in (DegradationTier.SHRINK_DP,
                              DegradationTier.FULL_REPLAN)


def test_availability_zero_in_plans_only_zone_replans_elsewhere(opt_env,
                                                                opt_job):
    """The plan's only pool drops to zero but another pool has capacity."""
    controller = TrainingController(env=opt_env, job=opt_job,
                                    objective=Objective.max_throughput())
    controller.start(small_topology(4), time_s=0.0)
    assert controller.current_plan.gpus_by_type() == {"A100-40": 16}
    survivor = ClusterTopology.single_zone("us-central1-a",
                                           {"n1-standard-v100-4": 4})
    event = controller.handle_availability_change(survivor, time_s=60.0,
                                                  cause="zone_outage")
    assert event is not None
    assert event.tier is DegradationTier.FULL_REPLAN
    assert controller.current_plan.gpus_by_type() == {"V100-16": 16}


# -- degradation tiers --------------------------------------------------------


def test_shrink_in_place_drops_data_parallel_columns(opt_env, opt_job):
    controller = make_controller(opt_env, opt_job, ReplanPolicy())
    controller.start(small_topology(4), time_s=0.0)
    incumbent = controller.current_plan
    event = controller.handle_availability_change(
        small_topology(2), time_s=60.0, cause="preemption_burst")
    assert event is not None
    assert event.tier is DegradationTier.SHRINK_DP
    assert event.planner_result.planner_name == "shrink-in-place"
    shrunk = controller.current_plan
    assert shrunk.pipeline_parallel == incumbent.pipeline_parallel
    assert shrunk.microbatch_size == incumbent.microbatch_size
    assert shrunk.data_parallel < incumbent.data_parallel
    assert shrunk.resource_allocation().fits_within(small_topology(2))


def test_shrink_disabled_falls_through_to_full_replan(opt_env, opt_job):
    controller = make_controller(opt_env, opt_job,
                                 ReplanPolicy(enable_shrink=False))
    controller.start(small_topology(4), time_s=0.0)
    event = controller.handle_availability_change(
        small_topology(2), time_s=60.0, cause="preemption_burst")
    assert event is not None
    assert event.tier is DegradationTier.FULL_REPLAN
    assert event.planner_result.planner_name == "sailor"


def test_park_then_resume_on_capacity(controller):
    controller.start(small_topology(2), time_s=0.0)
    assert controller.handle_availability_change(
        ClusterTopology(), time_s=30.0, cause="zone_outage") is None
    assert controller.parked
    assert controller.decisions[-1].tier is DegradationTier.PARK
    event = controller.handle_availability_change(
        small_topology(2), time_s=900.0, cause="capacity restored")
    assert event is not None
    assert not controller.parked
    assert controller.current_plan is not None


# -- replan policy: debounce, hysteresis, deadline, retry ---------------------


def test_debounce_suppresses_rapid_voluntary_replans(opt_env, opt_job):
    controller = make_controller(opt_env, opt_job,
                                 ReplanPolicy(debounce_s=300.0))
    controller.start(small_topology(2), time_s=0.0)
    plan_before = controller.current_plan
    # A flap 10 s later: the incumbent still fits, so the replan is debounced.
    event = controller.handle_availability_change(
        small_topology(6), time_s=10.0, cause="node_flap")
    assert event is None
    assert controller.current_plan is plan_before
    assert controller.decisions[-1].action == "debounced"
    # Once the debounce window passes, the controller replans and upgrades.
    event = controller.handle_availability_change(
        small_topology(6), time_s=400.0, cause="node_flap")
    assert event is not None


def test_hysteresis_ignores_small_pool_changes(opt_env, opt_job):
    controller = make_controller(opt_env, opt_job,
                                 ReplanPolicy(hysteresis_fraction=0.5))
    controller.start(small_topology(4), time_s=0.0)   # 16-GPU pool
    event = controller.handle_availability_change(
        small_topology(5), time_s=60.0, cause="node_flap")
    assert event is None
    assert controller.decisions[-1].action == "hysteresis"
    # A 4 -> 8 node change (100% of the deployed pool) clears the band.
    event = controller.handle_availability_change(
        small_topology(8), time_s=120.0, cause="quota restored")
    assert event is not None


def test_deadline_miss_keeps_incumbent(opt_env, opt_job):
    policy = ReplanPolicy(replan_deadline_s=1e-9)
    controller = make_controller(opt_env, opt_job, policy,
                                 planner=SailorPlanner(opt_env))
    start_event = controller.start(small_topology(2), time_s=0.0)
    assert start_event is not None            # deploy even on a missed deadline
    assert start_event.deadline_missed
    plan_before = controller.current_plan
    event = controller.handle_availability_change(
        small_topology(6), time_s=60.0, cause="quota restored")
    assert event is None
    assert controller.current_plan is plan_before
    assert controller.decisions[-1].action == "deadline_fallback"
    assert controller.decisions[-1].deadline_missed


def test_infeasible_pool_parks_with_backoff_and_retries(opt_env, opt_job):
    objective = Objective.max_throughput(max_cost_per_iteration_usd=1e-9)
    policy = ReplanPolicy(retry_backoff_s=100.0, retry_backoff_factor=2.0,
                          max_retry_backoff_s=350.0)
    controller = TrainingController(env=opt_env, job=opt_job,
                                    objective=objective, policy=policy)
    assert controller.start(small_topology(2), time_s=0.0) is None
    assert controller.parked
    assert controller.next_retry_at_s == pytest.approx(100.0)
    # Not due yet: nothing happens.
    assert controller.maybe_retry(small_topology(2), time_s=50.0) is None
    # Due: retries, fails again, backoff doubles (and is later capped).
    assert controller.maybe_retry(small_topology(2), time_s=100.0) is None
    assert controller.next_retry_at_s == pytest.approx(300.0)
    assert controller.maybe_retry(small_topology(2), time_s=300.0) is None
    assert controller.next_retry_at_s == pytest.approx(300.0 + 350.0)


def test_amortization_horizon_blocks_marginal_switches(opt_env, opt_job):
    """With a very short horizon no voluntary switch can amortise the pause."""
    controller = make_controller(opt_env, opt_job,
                                 ReplanPolicy(amortization_horizon_s=1e-6))
    controller.start(small_topology(2), time_s=0.0)
    plan_before = controller.current_plan
    event = controller.handle_availability_change(
        small_topology(6), time_s=60.0, cause="quota restored")
    assert event is None
    assert controller.current_plan is plan_before
    assert controller.decisions[-1].action == "not_worth_switching"


def test_incremental_context_reused_across_replans(controller):
    controller.start(small_topology(2), time_s=0.0)
    context_after_start = controller._search_context
    assert context_after_start is not None
    controller.handle_availability_change(small_topology(6), time_s=60.0)
    assert controller._search_context is context_after_start
    assert controller.search_stats.cache_hits > 0


# -- anytime results: gap-aware adoption & price moves ------------------------


def test_max_adopt_gap_adopts_degraded_result_with_small_gap(opt_env, opt_job):
    """A missed deadline no longer auto-keeps the incumbent: when the
    anytime result certifies a gap within the policy's tolerance, the
    degraded plan is adopted (flagged deadline_missed for observability)."""
    policy = ReplanPolicy(replan_deadline_s=1e-9, max_adopt_gap=1.0)
    controller = make_controller(opt_env, opt_job, policy,
                                 planner=SailorPlanner(opt_env))
    controller.start(small_topology(2), time_s=0.0)
    event = controller.handle_availability_change(
        small_topology(6), time_s=60.0, cause="quota restored")
    # The unbounded solve completed (gap 0.0 <= 1.0), so the better plan on
    # the larger pool is adopted despite the missed wall deadline.
    assert event is not None
    assert controller.decisions[-1].action == "switched"
    assert controller.decisions[-1].deadline_missed


def test_incomplete_result_is_degraded_even_without_deadline_miss(
        opt_env, opt_job):
    """A truncated anytime search (complete=False) goes through the same
    gap gate as a missed deadline: without max_adopt_gap the incumbent is
    kept."""
    from repro.core.planner import PlannerConfig

    truncated_planner = SailorPlanner(opt_env, config=PlannerConfig(
        max_search_nodes=50))
    controller = make_controller(opt_env, opt_job, ReplanPolicy(),
                                 planner=truncated_planner)
    controller.start(small_topology(2), time_s=0.0)
    plan_before = controller.current_plan
    event = controller.handle_availability_change(
        small_topology(6), time_s=60.0, cause="quota restored")
    assert event is None
    assert controller.current_plan is plan_before
    assert controller.decisions[-1].action == "deadline_fallback"


def test_incomplete_result_adopted_through_gap_gate(opt_env, opt_job):
    """Same truncated planner, but the policy tolerates any certified gap:
    the degraded plan is adopted when it beats the incumbent."""
    from repro.core.planner import PlannerConfig

    truncated_planner = SailorPlanner(opt_env, config=PlannerConfig(
        max_search_nodes=50))
    policy = ReplanPolicy(max_adopt_gap=1.0)
    controller = make_controller(opt_env, opt_job, policy,
                                 planner=truncated_planner)
    controller.start(small_topology(2), time_s=0.0)
    event = controller.handle_availability_change(
        small_topology(6), time_s=60.0, cause="quota restored")
    assert event is not None
    assert controller.decisions[-1].action == "switched"
    assert controller.decisions[-1].deadline_missed  # degraded adoption


def test_handle_price_change_rebuilds_caches_and_replans(opt_env, opt_job):
    """A price move invalidates the cost basis: the long-lived search
    context, the simulator and the planner are rebuilt, debounce is
    bypassed, and a decision is recorded under the price cause."""
    policy = ReplanPolicy(debounce_s=3600.0)  # would swallow a replan
    controller = make_controller(opt_env, opt_job, policy)
    controller.start(small_topology(4), time_s=0.0)
    context_before = controller._search_context
    simulator_before = controller.simulator
    decisions_before = len(controller.decisions)
    controller.handle_price_change(small_topology(4), time_s=1.0)
    assert controller._search_context is not context_before
    assert controller.simulator is not simulator_before
    assert len(controller.decisions) > decisions_before
    assert controller.decisions[-1].trigger == "price_move"
