"""Integration tests for the training controller."""

import pytest

from repro.core.objectives import Objective
from repro.hardware.topology import ClusterTopology
from repro.runtime.controller import TrainingController
from repro.runtime.worker import WorkerState


@pytest.fixture()
def controller(opt_env, opt_job):
    return TrainingController(env=opt_env, job=opt_job,
                              objective=Objective.max_throughput())


def small_topology(nodes=2):
    return ClusterTopology.homogeneous("a2-highgpu-4g", nodes)


def test_start_deploys_plan_and_workers(controller):
    event = controller.start(small_topology(4), time_s=0.0)
    assert event is not None
    assert event.reason == "initial deployment"
    assert controller.current_plan is not None
    assert controller.current_groups is not None
    assert len(controller.workers) == controller.current_plan.total_gpus
    assert all(w.state is WorkerState.TRAINING for w in controller.workers)
    assert event.breakdown.planning_s == pytest.approx(
        event.planner_result.search_time_s)


def test_start_with_empty_topology_keeps_job_idle(controller):
    event = controller.start(ClusterTopology(), time_s=0.0)
    assert event is None
    assert controller.current_plan is None
    assert controller.workers == []


def test_scale_up_triggers_reconfiguration(controller):
    controller.start(small_topology(2), time_s=0.0)
    before_gpus = controller.current_plan.total_gpus
    event = controller.handle_availability_change(small_topology(6), time_s=60.0)
    assert event is not None
    assert event.old_gpus == before_gpus
    assert event.new_gpus >= before_gpus
    assert controller.current_plan.total_gpus == event.new_gpus
    assert len(controller.events) == 2


def test_scale_down_replans_to_fit(controller):
    controller.start(small_topology(6), time_s=0.0)
    event = controller.handle_availability_change(small_topology(1), time_s=60.0)
    assert event is not None
    assert controller.current_plan.total_gpus <= 4
    assert controller.current_plan.resource_allocation().fits_within(
        small_topology(1))


def test_losing_all_resources_stops_workers(controller):
    controller.start(small_topology(2), time_s=0.0)
    event = controller.handle_availability_change(ClusterTopology(), time_s=30.0)
    assert event is None
    assert controller.current_plan is None
    assert controller.workers == []


def test_no_action_when_change_does_not_matter(controller):
    controller.start(small_topology(4), time_s=0.0)
    plan_before = controller.current_plan
    # Same topology again: the current plan still fits and no better plan
    # exists, so nothing should change.
    event = controller.handle_availability_change(small_topology(4), time_s=30.0)
    assert event is None
    assert controller.current_plan is plan_before
