"""Unit tests for the reconfiguration latency model."""

import pytest

from repro.runtime.reconfiguration import (
    REFERENCE_WORKERS,
    ReconfigurationModel,
    ReconfigurationBreakdown,
)


def test_reference_scale_matches_paper_numbers():
    model = ReconfigurationModel()
    breakdown = model.breakdown(REFERENCE_WORKERS)
    assert breakdown.planning_s == pytest.approx(0.1)
    assert breakdown.cleanup_s == pytest.approx(3.0)
    assert breakdown.broadcast_s == pytest.approx(1.25)
    assert breakdown.nccl_init_s == pytest.approx(4.5)
    assert breakdown.model_init_s == pytest.approx(2.0)
    assert breakdown.dataloader_s == pytest.approx(0.5)
    assert breakdown.total_s == pytest.approx(0.1 + 3.0 + 1.25 + 4.5 + 2.0 + 0.5)


def test_nccl_init_grows_with_cluster_size():
    model = ReconfigurationModel()
    small = model.breakdown(REFERENCE_WORKERS)
    large = model.breakdown(1024)
    assert large.nccl_init_s > 10 * small.nccl_init_s
    assert large.total_s > small.total_s
    assert large.cleanup_s == small.cleanup_s  # per-worker local work


def test_measured_planning_time_substituted():
    model = ReconfigurationModel()
    breakdown = model.breakdown(REFERENCE_WORKERS, planning_time_s=2.5)
    assert breakdown.planning_s == 2.5


def test_breakdown_as_dict_and_validation():
    model = ReconfigurationModel()
    phases = model.breakdown(40).as_dict()
    assert set(phases) == {"planning", "cleanup", "broadcast", "nccl_init",
                           "model_init", "dataloader"}
    assert model.total_s(40) == pytest.approx(sum(phases.values()))
    with pytest.raises(ValueError):
        model.breakdown(0)


def test_breakdown_total_property():
    breakdown = ReconfigurationBreakdown(1, 2, 3, 4, 5, 6)
    assert breakdown.total_s == 21
