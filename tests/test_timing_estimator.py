"""Unit tests for the iteration-time estimator."""

import pytest

from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.core.simulator.timing import TimingEstimator
from repro.models.partition import uniform_partition


@pytest.fixture()
def estimator(opt_env):
    return TimingEstimator(opt_env)


def homogeneous(job, node="a2-highgpu-4g", pp=4, dp=2, tp=4, mbs=2,
                zone="us-central1-a"):
    return ParallelizationPlan.homogeneous(job, node, pp, dp, tp, mbs, zone=zone)


def test_breakdown_structure(estimator, opt_job):
    plan = homogeneous(opt_job)
    breakdown = estimator.breakdown(plan)
    assert len(breakdown.pipeline_times_s) == plan.data_parallel
    assert len(breakdown.stage_compute_s) == plan.pipeline_parallel
    assert breakdown.iteration_time_s == pytest.approx(
        breakdown.pipeline_time_s + breakdown.sync_time_s + breakdown.update_time_s)
    assert breakdown.iteration_time_s > 0
    assert 0 <= breakdown.straggler_stage < plan.pipeline_parallel


def test_more_data_parallelism_reduces_iteration_time(estimator, opt_job):
    small = homogeneous(opt_job, dp=1, pp=2, tp=4, mbs=2)
    large = homogeneous(opt_job, dp=4, pp=2, tp=4, mbs=2)
    assert estimator.iteration_time(large) < estimator.iteration_time(small)


def test_v100_plan_slower_than_a100_plan(estimator, opt_job):
    a100 = homogeneous(opt_job, node="a2-highgpu-4g")
    v100 = homogeneous(opt_job, node="n1-standard-v100-4")
    assert estimator.iteration_time(v100) > estimator.iteration_time(a100)


def test_single_replica_has_no_sync_time(estimator, opt_job):
    plan = homogeneous(opt_job, dp=1, pp=2, tp=4, mbs=2)
    breakdown = estimator.breakdown(plan)
    assert breakdown.sync_time_s == 0.0


def test_straggler_dominates_mixed_stage(estimator, opt_job):
    """A stage with one V100 replica is as slow as its slowest replica."""
    partitions = uniform_partition(opt_job.model, 2)
    fast = StageReplica("a2-highgpu-4g", 4, "us-central1-a")
    slow = StageReplica("n1-standard-v100-4", 4, "us-central1-a")
    mixed_stage = StageConfig(partitions[0], [fast, slow])
    fast_stage = StageConfig(partitions[0], [fast, fast])
    plan_mixed = ParallelizationPlan(
        job=opt_job,
        stages=[mixed_stage, StageConfig(partitions[1], [fast, fast])],
        microbatch_size=2)
    plan_fast = ParallelizationPlan(
        job=opt_job,
        stages=[fast_stage, StageConfig(partitions[1], [fast, fast])],
        microbatch_size=2)
    mixed_time = estimator.stage_compute_time(plan_mixed, plan_mixed.stages[0])
    fast_time = estimator.stage_compute_time(plan_fast, plan_fast.stages[0])
    assert mixed_time > fast_time
    assert estimator.iteration_time(plan_mixed) > estimator.iteration_time(plan_fast)


def test_cross_region_pipeline_slower_than_single_zone(opt_env_geo, opt_job):
    estimator = TimingEstimator(opt_env_geo)
    partitions = uniform_partition(opt_job.model, 2)
    local = ParallelizationPlan(job=opt_job, stages=[
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "us-central1-a")]),
        StageConfig(partitions[1], [StageReplica("a2-highgpu-4g", 4, "us-central1-a")]),
    ], microbatch_size=2)
    cross = ParallelizationPlan(job=opt_job, stages=[
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "us-central1-a")]),
        StageConfig(partitions[1], [StageReplica("a2-highgpu-4g", 4, "us-west1-a")]),
    ], microbatch_size=2)
    assert estimator.iteration_time(cross) > estimator.iteration_time(local)


def test_cross_region_sync_much_slower_than_intra_zone(opt_env_geo, opt_job):
    estimator = TimingEstimator(opt_env_geo)
    partitions = uniform_partition(opt_job.model, 1)
    local = ParallelizationPlan(job=opt_job, stages=[
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "us-central1-a"),
                                    StageReplica("a2-highgpu-4g", 4, "us-central1-a")]),
    ], microbatch_size=2)
    cross = ParallelizationPlan(job=opt_job, stages=[
        StageConfig(partitions[0], [StageReplica("a2-highgpu-4g", 4, "us-central1-a"),
                                    StageReplica("a2-highgpu-4g", 4, "us-west1-a")]),
    ], microbatch_size=2)
    local_sync = estimator.stage_sync_time(local, local.stages[0])
    cross_sync = estimator.stage_sync_time(cross, cross.stages[0])
    assert cross_sync > 5 * local_sync
