"""Unit tests for the network link model."""

import pytest

from repro.hardware.network import (
    DEFAULT_LINKS,
    LinkClass,
    LinkSpec,
    NetworkModel,
    default_network_model,
)
from repro.hardware.nodes import get_node_type


def test_link_spec_transfer_time_includes_latency():
    link = LinkSpec(bandwidth_gbps=8.0, latency_s=0.001)  # 1 GB/s
    assert link.transfer_time(0) == 0.0
    assert link.transfer_time(1e9) == pytest.approx(0.001 + 1.0)


def test_link_spec_rejects_bad_values():
    with pytest.raises(ValueError):
        LinkSpec(bandwidth_gbps=0, latency_s=0.001)
    with pytest.raises(ValueError):
        LinkSpec(bandwidth_gbps=1, latency_s=-1)
    with pytest.raises(ValueError):
        LinkSpec(bandwidth_gbps=1, latency_s=0).transfer_time(-5)


def test_effective_bandwidth_increases_with_message_size():
    link = DEFAULT_LINKS[LinkClass.INTER_ZONE]
    small = link.effective_bandwidth(4 * 1024)
    large = link.effective_bandwidth(256 * 1024 * 1024)
    assert small < large <= link.bandwidth_bytes_per_s


def test_default_link_classes_ordered_by_bandwidth():
    links = DEFAULT_LINKS
    assert (links[LinkClass.INTRA_NODE].bandwidth_gbps
            > links[LinkClass.INTRA_ZONE].bandwidth_gbps
            > links[LinkClass.INTER_ZONE].bandwidth_gbps
            > links[LinkClass.INTER_REGION].bandwidth_gbps)
    assert (links[LinkClass.INTRA_NODE].latency_s
            < links[LinkClass.INTER_REGION].latency_s)


def test_classify_zones():
    model = default_network_model()
    assert model.classify("us-central1-a", "us-central1-a") is LinkClass.INTRA_ZONE
    assert model.classify("us-central1-a", "us-central1-b") is LinkClass.INTER_ZONE
    assert model.classify("us-central1-a", "us-west1-a") is LinkClass.INTER_REGION
    assert model.classify("us-central1-a", "us-central1-b",
                          same_node=True) is LinkClass.INTRA_NODE


def test_classify_with_explicit_region_map():
    model = default_network_model()
    mapping = {"zoneA": "region1", "zoneB": "region1", "zoneC": "region2"}
    assert model.classify("zoneA", "zoneB", zone_to_region=mapping) is LinkClass.INTER_ZONE
    assert model.classify("zoneA", "zoneC", zone_to_region=mapping) is LinkClass.INTER_REGION


def test_pair_link_capped_by_nic():
    model = default_network_model()
    a100 = get_node_type("a2-highgpu-4g")     # 100 Gbit NIC
    v100 = get_node_type("n1-standard-v100-4")  # 32 Gbit NIC
    link = model.pair_link(a100, v100, LinkClass.INTRA_ZONE)
    assert link.bandwidth_gbps == pytest.approx(32.0)
    same = model.pair_link(a100, a100, LinkClass.INTRA_ZONE)
    assert same.bandwidth_gbps == pytest.approx(100.0)


def test_intra_node_link_capped_by_gpu_interconnect():
    model = default_network_model()
    a100 = get_node_type("a2-highgpu-4g")
    link = model.pair_link(a100, a100, LinkClass.INTRA_NODE)
    # 300 GB/s NVLink -> 2400 Gbit/s equals the default intra-node cap.
    assert link.bandwidth_gbps <= 2400.0


def test_p2p_time_and_bandwidth_curve():
    model = default_network_model()
    a100 = get_node_type("a2-highgpu-4g")
    sizes = [2 ** i for i in range(12, 30, 2)]
    curve = model.bandwidth_curve(a100, a100, LinkClass.INTRA_ZONE, sizes)
    assert len(curve) == len(sizes)
    assert all(b > 0 for b in curve)
    assert curve == sorted(curve)  # monotone in message size
    assert model.p2p_time(0, a100, a100, LinkClass.INTRA_ZONE) == 0.0


def test_cross_zone_classes_flagged():
    assert LinkClass.INTER_ZONE.is_cross_zone
    assert LinkClass.INTER_REGION.is_cross_zone
    assert not LinkClass.INTRA_ZONE.is_cross_zone
    assert not LinkClass.INTRA_NODE.is_cross_zone
