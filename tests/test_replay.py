"""End-to-end tests for churn replay: determinism, incremental reuse,
graceful degradation, and checkpoint rollback under churn."""

import pytest

from repro.core.objectives import Objective
from repro.core.planner import SailorPlanner
from repro.core.serialization import plan_to_json
from repro.core.simulator import build_environment
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.controller import (
    DegradationTier,
    ReplanPolicy,
    TrainingController,
)
from repro.runtime.faults import FaultEvent, FaultScenarioGenerator, FaultTrace
from repro.runtime.replay import ChurnReplayer

POOLS = {("us-central1-a", "a2-highgpu-4g"): 4,
         ("us-central1-a", "n1-standard-v100-4"): 4}


@pytest.fixture(scope="module")
def mixed_base():
    return ClusterTopology.single_zone(
        "us-central1-a", {"a2-highgpu-4g": 4, "n1-standard-v100-4": 4})


def make_replayer(env, job, **kwargs):
    kwargs.setdefault("policy", ReplanPolicy(deterministic_timing=True))
    kwargs.setdefault("checkpoint_config",
                      CheckpointConfig(interval_iterations=10))
    return ChurnReplayer(env, job, Objective.max_throughput(), **kwargs)


# -- zero-drop + determinism --------------------------------------------------

def test_churn_replay_applies_every_event(opt_env, opt_job, mixed_base):
    trace = FaultScenarioGenerator(seed=0).churn_trace(
        POOLS, duration_s=4 * 3600.0, num_events=150)
    report = make_replayer(opt_env, opt_job).run(trace,
                                                 base_topology=mixed_base)
    assert report.events_total == 150
    assert report.events_dropped == 0
    assert report.events_applied == 150
    assert report.iterations_completed > 0
    assert report.replans > 0
    # The whole session is accounted for: training + idle + reconfiguring.
    accounted = (report.training_time_s + report.idle_time_s
                 + report.reconfiguration_time_s)
    assert accounted == pytest.approx(report.duration_s, abs=1.0)


def test_churn_replay_is_deterministic(opt_env, opt_job, mixed_base):
    trace = FaultScenarioGenerator(seed=7).churn_trace(
        POOLS, duration_s=3 * 3600.0, num_events=120)

    def replay():
        report = make_replayer(opt_env, opt_job).run(
            trace, base_topology=mixed_base)
        return ([(r.time_s, r.trigger, r.tier, r.action, r.plan_gpus,
                  r.iterations_lost) for r in report.records],
                report.plan_history,
                report.iterations_completed,
                report.iterations_lost_to_rollback)

    first = replay()
    second = replay()
    assert first[0] == second[0]      # decision sequence
    assert first[1] == second[1]      # plan signatures, byte for byte
    assert first[2] == second[2]      # iteration accounting
    assert first[3] == second[3]


# -- incremental reuse --------------------------------------------------------

def test_incremental_replans_are_warm(opt_env, opt_job, mixed_base):
    trace = FaultScenarioGenerator(seed=1).churn_trace(
        POOLS, duration_s=2 * 3600.0, num_events=60)
    report = make_replayer(opt_env, opt_job).run(trace,
                                                 base_topology=mixed_base)
    assert report.replans_warm > 0
    assert report.cache_hits > 0
    assert 0.0 < report.percent_replans_warm <= 1.0


def test_incremental_replans_match_from_scratch_solves(opt_env, opt_job,
                                                       mixed_base):
    """Plans out of the long-lived context are byte-identical to cold solves."""
    trace = FaultScenarioGenerator(seed=2).churn_trace(
        POOLS, duration_s=3600.0, num_events=14)
    availability = trace.to_availability_trace()
    objective = Objective.max_throughput()
    controller = TrainingController(env=opt_env, job=opt_job,
                                    objective=objective)
    fresh = SailorPlanner(opt_env)

    compared = 0
    for time_s, _ in trace.grouped_events():
        topology = availability.topology_at(time_s, base=mixed_base)
        warm_result = controller.replan(topology)
        cold_result = fresh.plan(opt_job, topology, objective)
        assert warm_result.found == cold_result.found
        if warm_result.found:
            assert (plan_to_json(warm_result.plan)
                    == plan_to_json(cold_result.plan))
            compared += 1
    assert compared > 0
    assert controller.search_stats.cache_hits > 0


# -- graceful degradation -----------------------------------------------------

def test_deadline_miss_keeps_incumbent_instead_of_raising(opt_env, opt_job,
                                                          mixed_base):
    # An explicit planner without an internal time limit, so every solve
    # "overruns" the absurd deadline and the fallback path is what acts.
    policy = ReplanPolicy(replan_deadline_s=1e-9, deterministic_timing=True)
    controller = TrainingController(
        env=opt_env, job=opt_job, objective=Objective.max_throughput(),
        planner=SailorPlanner(opt_env), policy=policy)
    replayer = make_replayer(opt_env, opt_job, policy=policy,
                             controller=controller)
    trace = FaultTrace(events=[
        FaultEvent(0.0, "initial", "us-central1-a", "a2-highgpu-4g", 2),
        FaultEvent(600.0, "quota_cut", "us-central1-a", "a2-highgpu-4g", 4),
        FaultEvent(1200.0, "quota_cut", "us-central1-a", "a2-highgpu-4g", 3),
    ], duration_s=1800.0)
    report = replayer.run(trace, base_topology=mixed_base)
    assert report.events_dropped == 0
    assert report.deadline_fallbacks >= 2
    # The incumbent survived both voluntary replan opportunities.
    plan_gpus = {r.plan_gpus for r in report.records}
    assert plan_gpus == {8}
    fallbacks = [d for d in controller.decisions
                 if d.action == "deadline_fallback"]
    assert fallbacks and all(d.deadline_missed for d in fallbacks)


def test_all_infeasible_parks_and_retries_with_backoff(opt_env, opt_job,
                                                       mixed_base):
    # A budget no plan can satisfy: every solve is "transiently" infeasible.
    objective = Objective.max_throughput(max_cost_per_iteration_usd=1e-9)
    policy = ReplanPolicy(retry_backoff_s=200.0, retry_backoff_factor=2.0,
                          max_retry_backoff_s=800.0,
                          deterministic_timing=True)
    controller = TrainingController(env=opt_env, job=opt_job,
                                    objective=objective, policy=policy)
    replayer = ChurnReplayer(opt_env, opt_job, objective, policy=policy,
                             controller=controller)
    trace = FaultTrace(events=[
        FaultEvent(0.0, "initial", "us-central1-a", "a2-highgpu-4g", 4),
    ], duration_s=3600.0)
    report = replayer.run(trace, base_topology=mixed_base)
    assert report.events_dropped == 0
    assert report.parks >= 2          # initial park + at least one retry park
    assert report.retries >= 2        # backoff wakeups fired
    assert report.iterations_completed == 0
    assert controller.parked
    assert controller.current_plan is None
    # Backoff grew and was capped.
    assert controller._retry_backoff_s == policy.max_retry_backoff_s


def test_zone_outage_parks_then_resumes_on_capacity(opt_env, opt_job,
                                                    mixed_base):
    generator = FaultScenarioGenerator(seed=0)
    events = [FaultEvent(0.0, "initial", "us-central1-a",
                         "a2-highgpu-4g", 4),
              FaultEvent(0.0, "initial", "us-central1-a",
                         "n1-standard-v100-4", 4)]
    events += generator.zone_outage(POOLS, "us-central1-a", at_s=900.0,
                                    outage_s=900.0)
    trace = FaultTrace(events=events, duration_s=3600.0)
    replayer = make_replayer(opt_env, opt_job)
    report = replayer.run(trace, base_topology=mixed_base)
    assert report.events_dropped == 0
    assert report.parks == 1
    assert report.idle_time_s >= 900.0 * 0.9
    # Training resumed once the zone came back.
    assert replayer.controller.current_plan is not None
    assert not replayer.controller.parked
    assert report.iterations_completed > 0


# -- checkpoint rollback under churn ------------------------------------------

def test_mid_drain_preemption_rolls_back_to_previous_durable(opt_env, opt_job,
                                                             mixed_base):
    """A preemption landing before any drain finishes loses *all* progress;
    with fast drains only the last interval is lost."""
    preempt = [FaultEvent(0.0, "initial", "us-central1-a",
                          "a2-highgpu-4g", 4),
               FaultEvent(1200.0, "mid_drain_preemption", "us-central1-a",
                          "a2-highgpu-4g", 1)]
    trace = FaultTrace(events=preempt, duration_s=1800.0)
    policy = ReplanPolicy(deterministic_timing=True, enable_shrink=False)

    fast = make_replayer(opt_env, opt_job, policy=policy,
                         checkpoint_config=CheckpointConfig(
                             interval_iterations=10))
    fast_report = fast.run(trace, base_topology=mixed_base)

    # Storage so slow that no drain completes before the preemption: the
    # latest checkpoint is still in flight, so rollback reaches all the way
    # back past it (here: to iteration 0 -- nothing durable yet).
    slow = make_replayer(opt_env, opt_job, policy=policy,
                         checkpoint_config=CheckpointConfig(
                             interval_iterations=10,
                             storage_write_gbps=1e-6))
    slow_report = slow.run(trace, base_topology=mixed_base)

    assert fast_report.events_dropped == 0
    assert slow_report.events_dropped == 0
    assert slow.checkpoints.latest_durable(1200.0) is None
    assert fast.checkpoints.latest_durable(1200.0) is not None
    # Fast drains: at most one checkpoint interval (+ the in-flight tail)
    # is lost.  Slow drains: everything since iteration 0.
    assert 0 < fast_report.iterations_lost_to_rollback <= 20
    assert (slow_report.iterations_lost_to_rollback
            > fast_report.iterations_lost_to_rollback)
    preempt_record = [r for r in slow_report.records
                      if "mid_drain_preemption" in r.trigger][0]
    assert preempt_record.iterations_lost \
        == slow_report.iterations_lost_to_rollback


def test_shrink_in_place_does_not_roll_back(opt_env, opt_job, mixed_base):
    """Dropping data-parallel columns keeps complete state: no rollback."""
    events = [FaultEvent(0.0, "initial", "us-central1-a",
                         "a2-highgpu-4g", 4),
              FaultEvent(1200.0, "preemption_burst", "us-central1-a",
                         "a2-highgpu-4g", 2)]
    trace = FaultTrace(events=events, duration_s=2400.0)
    replayer = make_replayer(opt_env, opt_job,
                             policy=ReplanPolicy(deterministic_timing=True,
                                                 enable_shrink=True))
    report = replayer.run(trace, base_topology=mixed_base)
    assert report.events_dropped == 0
    if report.shrinks:                 # shrink applied: state survived
        assert report.iterations_lost_to_rollback == 0
    else:                              # pool shape forced a full replan
        assert report.iterations_lost_to_rollback >= 0


# -- price moves --------------------------------------------------------------
#
# These tests build a private environment: the replayer mutates
# env.prices.gpu_hourly_usd in place while interpreting price_move events,
# and the session-scoped fixtures must not see those edits.

def _price_env(job, base):
    return build_environment(job, base, seed=7)


def test_price_move_replans_under_cost_objective_and_revert_restores(
        opt_job, mixed_base):
    env = _price_env(opt_job, mixed_base)
    base_prices = dict(env.prices.gpu_hourly_usd)
    events = [FaultEvent(0.0, "initial", "us-central1-a",
                         "a2-highgpu-4g", 4),
              FaultEvent(0.0, "initial", "us-central1-a",
                         "n1-standard-v100-4", 4)]
    events += FaultScenarioGenerator(seed=0).price_move(
        "us-central1-a", "a2-highgpu-4g", base_nodes=4, at_s=900.0,
        multiplier=4.0, revert_after_s=900.0)
    trace = FaultTrace(events=events, duration_s=2700.0)
    replayer = ChurnReplayer(env, opt_job, Objective.min_cost(),
                             policy=ReplanPolicy(deterministic_timing=True),
                             checkpoint_config=CheckpointConfig(
                                 interval_iterations=10))
    report = replayer.run(trace, base_topology=mixed_base)
    assert report.events_dropped == 0
    assert report.price_moves == 2
    # Each move drove a decision through the controller's price path.
    price_records = [r for r in report.records
                     if "price_move" in r.trigger]
    assert len(price_records) == 2
    # The revert restored the exact run-start catalog: multipliers are
    # absolute with respect to base prices, not compounding.
    assert env.prices.gpu_hourly_usd == base_prices


def test_price_move_without_revert_leaves_scaled_price(opt_job, mixed_base):
    env = _price_env(opt_job, mixed_base)
    base_prices = dict(env.prices.gpu_hourly_usd)
    moved = get_node_type("a2-highgpu-4g").gpu.name
    untouched = get_node_type("n1-standard-v100-4").gpu.name
    events = [FaultEvent(0.0, "initial", "us-central1-a",
                         "a2-highgpu-4g", 4),
              FaultEvent(0.0, "initial", "us-central1-a",
                         "n1-standard-v100-4", 4)]
    events += FaultScenarioGenerator(seed=0).price_move(
        "us-central1-a", "a2-highgpu-4g", base_nodes=4, at_s=600.0,
        multiplier=2.0)
    trace = FaultTrace(events=events, duration_s=1200.0)
    report = make_replayer(env, opt_job).run(trace, base_topology=mixed_base)
    assert report.events_dropped == 0
    assert report.price_moves == 1
    assert env.prices.gpu_hourly_usd[moved] \
        == pytest.approx(base_prices[moved] * 2.0)
    assert env.prices.gpu_hourly_usd[untouched] == base_prices[untouched]
