"""Framework and meta tests for the invariant linter (``repro.analysis``).

Three layers:

* framework unit tests -- suppression parsing (the mandatory
  justification), suppression scoping through comment blocks, the JSON
  reporter schema round-trip, the exit-code contract (a crashing rule is
  never a clean run);
* per-rule meta tests -- every registered rule must fire on its seeded-bad
  fixture under ``tests/analysis_fixtures/`` and stay silent on the clean
  twin;
* the live-tree gate -- the shipped repository lints clean, inside the
  CI time budget.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.core import Finding, SourceFile, parse_suppressions
from repro.analysis.driver import main, run_lint
from repro.analysis.registry import RULES, Rule, all_rules
from repro.analysis.report import (
    JSON_SCHEMA_VERSION,
    format_json,
    format_text,
    result_from_json,
)
from repro.core.hotpath import hot_path

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

#: rule id -> fixture directory prefix (``<prefix>_bad`` / ``<prefix>_good``).
RULE_FIXTURES = {
    "admissibility": "admissibility",
    "cache-key": "cache_key",
    "determinism": "determinism",
    "hot-loop-alloc": "hot_loop",
    "swallowed-exceptions": "exceptions",
    "toggle-coverage": "toggle",
}


# -- registry ------------------------------------------------------------------


def test_every_registered_rule_has_a_fixture_pair():
    assert set(all_rules()) == set(RULE_FIXTURES)
    for prefix in RULE_FIXTURES.values():
        assert (FIXTURES / f"{prefix}_bad").is_dir()
        assert (FIXTURES / f"{prefix}_good").is_dir()


# -- per-rule meta tests -------------------------------------------------------


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_fires_on_its_seeded_violation(rule):
    result = run_lint(FIXTURES / f"{RULE_FIXTURES[rule]}_bad",
                      rule_names=[rule])
    assert not result.errors
    assert result.exit_code == 1
    assert any(f.rule == rule for f in result.findings), (
        f"rule {rule} missed its seeded violation; findings: "
        f"{[f.to_dict() for f in result.findings]}")


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_is_silent_on_the_clean_twin(rule):
    result = run_lint(FIXTURES / f"{RULE_FIXTURES[rule]}_good",
                      rule_names=[rule])
    assert not result.errors
    assert result.findings == [], [f.to_dict() for f in result.findings]
    assert result.exit_code == 0


def test_cache_key_rule_separates_dead_from_unkeyed_fields():
    result = run_lint(FIXTURES / "cache_key_bad", rule_names=["cache-key"])
    messages = [f.message for f in result.findings]
    assert any("dead config field" in m for m in messages)
    assert any("folded into no cache key" in m for m in messages)
    # The properly-keyed field must not be flagged.
    assert not any("max_states" in m for m in messages)


def test_determinism_rule_catches_every_seeded_category():
    result = run_lint(FIXTURES / "determinism_bad",
                      rule_names=["determinism"])
    messages = " | ".join(f.message for f in result.findings)
    assert "time.time" in messages
    assert "time.perf_counter" in messages
    assert "random" in messages
    assert "hash-order" in messages or "hash-iteration" in messages


def test_clean_twins_keep_their_justified_suppressions():
    """The good fixtures exercise the waiver path: findings exist but are
    suppressed, and a suppressed finding never reaches the report."""
    result = run_lint(FIXTURES / "determinism_good",
                      rule_names=["determinism"])
    assert result.findings == []
    assert any(f.rule == "determinism" for f in result.suppressed)


def test_bad_suppression_is_a_finding_and_suppresses_nothing():
    result = run_lint(FIXTURES / "suppression_bad",
                      rule_names=["swallowed-exceptions"])
    rules_fired = {f.rule for f in result.findings}
    assert rules_fired == {"bad-suppression", "swallowed-exceptions"}
    assert result.exit_code == 1


# -- suppression parsing -------------------------------------------------------


def test_parse_suppressions_inline_and_multi_rule():
    by_line, file_scope, malformed = parse_suppressions(
        "x = 1  # lint: disable=rule-a,rule-b -- both are fine here\n",
        "mod.py")
    assert malformed == [] and file_scope == []
    (suppression,) = by_line[1]
    assert suppression.rules == ("rule-a", "rule-b")
    assert suppression.justification == "both are fine here"
    assert suppression.matches("rule-a") and suppression.matches("rule-b")
    assert not suppression.matches("rule-c")


def test_parse_suppressions_file_scope_and_all():
    _, file_scope, malformed = parse_suppressions(
        "# lint: disable-file=all -- generated file\n", "mod.py")
    assert malformed == []
    (suppression,) = file_scope
    assert suppression.file_scope and suppression.matches("anything")


def test_justification_is_mandatory():
    by_line, _, malformed = parse_suppressions(
        "x = 1  # lint: disable=rule-a\n", "mod.py")
    assert by_line == {}
    (finding,) = malformed
    assert finding.rule == "bad-suppression"
    assert "justification" in finding.message


def test_suppression_reaches_through_a_comment_block(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# lint: disable=mock-rule -- the justification starts here\n"
        "# and continues over a second comment line\n"
        "value = 1\n")
    source_file = SourceFile.load(path, tmp_path)
    hit = Finding(rule="mock-rule", path="mod.py", line=3, col=0, message="m")
    assert source_file.is_suppressed(hit) is not None
    miss = Finding(rule="other-rule", path="mod.py", line=3, col=0,
                   message="m")
    assert source_file.is_suppressed(miss) is None


def test_suppression_covers_anchor_lines(tmp_path):
    """Whole-function rules anchor findings to the def line: a justified
    comment above the def covers a finding deep inside the body."""
    path = tmp_path / "mod.py"
    path.write_text(
        "# lint: disable=mock-rule -- whole function is waived\n"
        "def f():\n"
        "    return 1\n")
    source_file = SourceFile.load(path, tmp_path)
    finding = Finding(rule="mock-rule", path="mod.py", line=3, col=4,
                      message="m", anchor_lines=(2,))
    assert source_file.is_suppressed(finding) is not None


# -- reporters -----------------------------------------------------------------


def test_json_report_schema_round_trips():
    result = run_lint(FIXTURES / "cache_key_bad", rule_names=["cache-key"])
    findings, payload = result_from_json(format_json(result))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["clean"] is False
    assert [f.to_dict() for f in findings] == \
        [f.to_dict() for f in result.findings]
    assert payload["rules"]["cache-key"]["findings"] == len(result.findings)
    assert payload["rules"]["cache-key"]["time_s"] >= 0.0


def test_json_report_rejects_unknown_versions():
    result = run_lint(FIXTURES / "cache_key_good", rule_names=["cache-key"])
    payload = json.loads(format_json(result))
    payload["version"] = 999
    with pytest.raises(ValueError, match="version"):
        result_from_json(json.dumps(payload))


def test_text_report_carries_locations_and_timings():
    result = run_lint(FIXTURES / "cache_key_bad", rule_names=["cache-key"])
    text = format_text(result)
    assert "dp_solver.py" in text
    assert "[cache-key]" in text
    assert "finding(s)" in text and "ms" in text


# -- exit-code contract --------------------------------------------------------


def test_unknown_rule_is_a_usage_error():
    result = run_lint(FIXTURES / "cache_key_good",
                      rule_names=["no-such-rule"])
    assert result.exit_code == 2
    assert result.errors and "no-such-rule" in result.errors[0]


def test_crashing_rule_never_passes_as_clean(monkeypatch):
    class BoomRule(Rule):
        name = "boom"
        description = "always crashes"

        def run(self, index):
            raise RuntimeError("kaboom")

    monkeypatch.setitem(RULES, "boom", BoomRule)
    result = run_lint(FIXTURES / "cache_key_good", rule_names=["boom"])
    assert result.exit_code == 2
    assert any("boom" in error for error in result.errors)


def test_main_cli_contract(capsys):
    assert main(["--list-rules"]) == 0
    assert "determinism" in capsys.readouterr().out
    assert main(["--root", str(FIXTURES / "does-not-exist")]) == 2
    capsys.readouterr()
    assert main(["--root", str(FIXTURES / "cache_key_bad"),
                 "--rules", "cache-key", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False


# -- the hot_path marker -------------------------------------------------------


def test_hot_path_marker_is_zero_cost_identity():
    def kernel():
        return 42

    marked = hot_path(kernel)
    assert marked is kernel
    assert kernel.__hot_path__ is True
    assert kernel() == 42


def test_production_kernels_are_marked_hot():
    from repro.core.dp_solver import DPSolver
    from repro.core.resource_state import ResourceStateEngine, \
        compute_forward_layers

    assert getattr(compute_forward_layers, "__hot_path__", False)
    assert getattr(ResourceStateEngine.run_backward, "__hot_path__", False)
    assert getattr(ResourceStateEngine._solve_layer, "__hot_path__", False)
    assert getattr(ResourceStateEngine._solve_layer_shared,
                   "__hot_path__", False)
    assert getattr(DPSolver._solve_budget_batched, "__hot_path__", False)


# -- the live-tree gate --------------------------------------------------------


def test_live_tree_is_lint_clean():
    """The shipped repository passes its own lint, inside the CI budget."""
    result = run_lint(REPO_ROOT)
    assert not result.errors, result.errors
    assert result.findings == [], "\n".join(
        f"{f.location()}: [{f.rule}] {f.message}" for f in result.findings)
    assert result.exit_code == 0
    assert result.total_time_s < 10.0
    # Every live waiver carries its justification (parse-enforced), and the
    # suppression inventory stays intentional: waivers exist.
    assert result.suppressed, "expected justified suppressions in the tree"
