"""Unit tests for transformer model specs and training-job specs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.catalog import get_model, list_models
from repro.models.spec import TrainingJobSpec, TransformerModelSpec, dtype_size_bytes


def test_catalog_contains_paper_models():
    assert get_model("OPT-350M").num_layers == 24
    assert get_model("GPT-Neo-2.7B").num_layers == 32
    assert len(list_models()) >= 3


def test_opt350m_parameter_count_close_to_350m():
    model = get_model("OPT-350M")
    assert 300e6 < model.total_params < 450e6


def test_gpt_neo_parameter_count_close_to_2_7b():
    model = get_model("GPT-Neo-2.7B")
    assert 2.4e9 < model.total_params < 3.1e9


def test_params_per_layer_dominated_by_12_h_squared():
    model = get_model("OPT-350M")
    h = model.hidden_size
    assert model.params_per_layer == pytest.approx(12 * h * h, rel=0.01)


def test_invalid_model_specs_rejected():
    with pytest.raises(ValueError):
        TransformerModelSpec(name="bad", num_layers=0, hidden_size=64, num_heads=4)
    with pytest.raises(ValueError):
        TransformerModelSpec(name="bad", num_layers=2, hidden_size=65, num_heads=4)


def test_flops_scale_with_batch_and_sequence():
    model = get_model("OPT-350M")
    base = model.layer_forward_flops(1, 1024)
    assert model.layer_forward_flops(2, 1024) == pytest.approx(2 * base)
    assert model.layer_forward_flops(1, 2048) > 2 * base  # attention is quadratic
    assert model.layer_backward_flops(1, 1024) == pytest.approx(2 * base)
    with pytest.raises(ValueError):
        model.layer_forward_flops(0, 128)


def test_lm_head_flops_scale_with_vocab():
    model = get_model("OPT-350M")
    flops = model.lm_head_forward_flops(1, 2048)
    assert flops == pytest.approx(2 * 2048 * model.hidden_size * model.vocab_size)


def test_activation_bytes_scale_inverse_with_tp():
    model = get_model("OPT-350M")
    full = model.layer_activation_bytes(4, 2048, tensor_parallel=1)
    half = model.layer_activation_bytes(4, 2048, tensor_parallel=2)
    assert half == pytest.approx(full / 2)
    with pytest.raises(ValueError):
        model.layer_activation_bytes(1, 128, tensor_parallel=0)


def test_boundary_activation_bytes():
    model = get_model("OPT-350M")
    assert model.boundary_activation_bytes(2, 2048) == 2 * 2048 * model.hidden_size * 2


def test_dtype_sizes():
    assert dtype_size_bytes("fp16") == 2
    assert dtype_size_bytes("fp32") == 4
    with pytest.raises(ValueError):
        dtype_size_bytes("int8")


# -- training job spec ----------------------------------------------------------

def test_job_spec_validation():
    model = get_model("OPT-350M")
    job = TrainingJobSpec(model=model, global_batch_size=2048)
    assert job.bytes_per_param == 18.0
    with pytest.raises(ValueError):
        TrainingJobSpec(model=model, global_batch_size=0)
    with pytest.raises(ValueError):
        TrainingJobSpec(model=model, sequence_length=10_000)
    with pytest.raises(ValueError):
        TrainingJobSpec(model=model, optimizer="lion")


def test_sgd_has_smaller_memory_multiplier():
    model = get_model("OPT-350M")
    adam = TrainingJobSpec(model=model, optimizer="adam")
    sgd = TrainingJobSpec(model=model, optimizer="sgd")
    assert sgd.bytes_per_param < adam.bytes_per_param


def test_valid_microbatch_sizes_divide_global_batch():
    model = get_model("OPT-350M")
    job = TrainingJobSpec(model=model, global_batch_size=96)
    sizes = job.valid_microbatch_sizes(max_mbs=64)
    assert sizes == [1, 2, 4, 8, 16, 32]
    assert all(job.global_batch_size % s == 0 for s in sizes)


def test_num_microbatches_and_errors():
    model = get_model("OPT-350M")
    job = TrainingJobSpec(model=model, global_batch_size=256)
    assert job.num_microbatches(data_parallel=4, microbatch_size=2) == 32
    with pytest.raises(ValueError):
        job.num_microbatches(data_parallel=3, microbatch_size=2)
    with pytest.raises(ValueError):
        job.num_microbatches(data_parallel=0, microbatch_size=2)


@settings(max_examples=40, deadline=None)
@given(dp=st.sampled_from([1, 2, 4, 8, 16]), mbs=st.sampled_from([1, 2, 4, 8]))
def test_num_microbatches_property(dp, mbs):
    """dp * mbs * num_microbatches always reconstructs the global batch."""
    model = get_model("OPT-350M")
    job = TrainingJobSpec(model=model, global_batch_size=2048)
    nb = job.num_microbatches(dp, mbs)
    assert nb * dp * mbs == job.global_batch_size
