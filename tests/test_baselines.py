"""Integration tests for the baseline planners."""

import math
import time

import pytest

from repro.baselines import get_baseline, list_baselines
from repro.baselines.base import BaselineSearchLimits
from repro.core.objectives import Objective
from repro.core.simulator import MemoryEstimator


ALL_BASELINES = ("piper", "varuna", "amp", "metis", "flashflex", "galvatron",
                 "aceso", "oobleck", "dtfm")

FAST_LIMITS = BaselineSearchLimits(time_limit_s=5.0, max_ranked=16,
                                   max_candidates=512)


def make(name, env):
    kwargs = {"limits": FAST_LIMITS}
    if name in ("metis", "aceso", "oobleck"):
        kwargs["time_limit_s"] = 5.0
    return get_baseline(name, env, **kwargs)


def test_registry_contains_all_baselines():
    assert set(ALL_BASELINES) <= set(list_baselines())
    with pytest.raises(KeyError):
        get_baseline("alpa", env=None)


@pytest.mark.parametrize("name", ALL_BASELINES)
def test_baseline_finds_valid_plan_on_homogeneous_cluster(name, opt_env, opt_job,
                                                          a100_topology):
    baseline = make(name, opt_env)
    result = baseline.plan(opt_job, a100_topology, Objective.max_throughput())
    assert result.planner_name == name
    assert result.candidates_evaluated > 0
    assert result.found, f"{name} found no valid plan"
    plan = result.plan
    assert plan.resource_allocation().fits_within(a100_topology)
    assert MemoryEstimator(opt_env).plan_fits(plan)
    assert result.evaluation.throughput_iters_per_s > 0


def test_varuna_only_searches_2d_plans(opt_env, opt_job, a100_topology):
    baseline = make("varuna", opt_env)
    ranked = baseline.ranked_plans(opt_job, a100_topology,
                                   Objective.max_throughput())
    assert ranked
    for candidate in ranked:
        degrees = {r.tensor_parallel for s in candidate.plan.stages
                   for r in s.replicas}
        assert degrees == {1}


def test_amp_counts_oom_plans_on_memory_pressure(neo_env, neo_job,
                                                 mixed_topology):
    baseline = make("amp", neo_env)
    result = baseline.plan(neo_job, mixed_topology, Objective.max_throughput())
    # AMP does not model memory, so it ranks plans that do not actually fit.
    assert result.oom_plans_generated > 0


def test_heterogeneous_baselines_use_both_gpu_types(opt_env, opt_job,
                                                    mixed_topology):
    for name in ("amp", "flashflex"):
        baseline = make(name, opt_env)
        ranked = baseline.ranked_plans(opt_job, mixed_topology,
                                       Objective.max_throughput())
        assert ranked, name
        mixed = any(len(c.plan.gpus_by_type()) > 1 for c in ranked)
        assert mixed, f"{name} never mixes GPU types"


def test_homogeneous_baselines_stick_to_fastest_type(opt_env, opt_job,
                                                     mixed_topology):
    baseline = make("piper", opt_env)
    ranked = baseline.ranked_plans(opt_job, mixed_topology,
                                   Objective.max_throughput())
    assert ranked
    for candidate in ranked:
        assert set(candidate.plan.gpus_by_type()) == {"A100-40"}


def test_dtfm_spreads_over_zones(opt_env_geo, opt_job, geo_topology_2regions):
    baseline = make("dtfm", opt_env_geo)
    ranked = baseline.ranked_plans(opt_job, geo_topology_2regions,
                                   Objective.max_throughput())
    assert ranked
    zones_used = max(len(c.plan.zones()) for c in ranked)
    assert zones_used >= 2


def test_metis_requires_divisible_global_batch(opt_env, opt_job, mixed_topology):
    baseline = make("metis", opt_env)
    ranked = baseline.ranked_plans(opt_job, mixed_topology,
                                   Objective.max_throughput())
    # 256-sequence batch divides the 64-GPU cluster, so plans exist.
    assert ranked
    total_gpus = mixed_topology.total_gpus()
    assert opt_job.global_batch_size % total_gpus == 0


def test_baseline_respects_throughput_constraint(opt_env, opt_job,
                                                 a100_topology):
    baseline = make("galvatron", opt_env)
    unconstrained = baseline.plan(opt_job, a100_topology,
                                  Objective.max_throughput())
    floor = unconstrained.evaluation.throughput_iters_per_s * 0.5
    result = baseline.plan(opt_job, a100_topology,
                           Objective.min_cost(min_throughput_iters_per_s=floor))
    if result.found:
        assert result.evaluation.throughput_iters_per_s >= floor


def test_baseline_search_times_reported(opt_env, opt_job, a100_topology):
    fast = make("piper", opt_env)
    result = fast.plan(opt_job, a100_topology, Objective.max_throughput())
    assert 0 <= result.search_time_s < 10.0


def test_baseline_deadline_marks_truncated_search_incomplete(opt_env, opt_job,
                                                             a100_topology):
    """The uniform absolute deadline every baseline inherits from
    ``HeterogeneityBlindBaseline.plan``: an already-expired deadline cuts
    candidate enumeration immediately and the result says so (incomplete,
    infinite gap -- a truncated grid search certifies nothing)."""
    baseline = make("piper", opt_env)
    result = baseline.plan(opt_job, a100_topology, Objective.max_throughput(),
                           deadline=time.perf_counter() - 1.0)
    assert not result.complete
    assert result.optimality_gap_bound == math.inf
    # A generous deadline leaves the exhaustive enumeration untouched and
    # the result certified complete, matching the no-deadline call.
    relaxed = baseline.plan(opt_job, a100_topology, Objective.max_throughput(),
                            deadline=time.perf_counter() + 60.0)
    assert relaxed.complete
    assert relaxed.optimality_gap_bound == 0.0
    untimed = baseline.plan(opt_job, a100_topology, Objective.max_throughput())
    assert untimed.complete
    assert untimed.found == relaxed.found
    if untimed.found:
        assert untimed.evaluation.iteration_time_s \
            == relaxed.evaluation.iteration_time_s
