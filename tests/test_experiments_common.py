"""Unit tests for the experiment-harness infrastructure."""

import pytest

from repro.experiments.common import (
    ExperimentTable,
    PAPER_SCALE,
    SMALL_SCALE,
    TINY_SCALE,
    a100_topology,
    geo_topology,
    gh200_topology,
    gpt_neo_job,
    mixed_a100_v100_topology,
    opt_350m_job,
    resolve_scale,
    rtx_heterogeneous_topology,
    v100_topology,
)


def test_experiment_table_rows_and_columns():
    table = ExperimentTable(title="t", columns=["a", "b"])
    table.add_row(a=1, b=2.5)
    table.add_row(a=3)
    assert table.column("a") == [1, 3]
    assert table.column("b") == [2.5, None]
    assert table.filtered(a=3) == [{"a": 3}]
    with pytest.raises(ValueError):
        table.add_row(c=1)
    with pytest.raises(KeyError):
        table.column("c")
    text = table.to_text()
    assert "a" in text and "2.5" in text and "-" in text


def test_scales_resolve_and_shrink_gpu_counts():
    assert resolve_scale("paper") is PAPER_SCALE
    assert resolve_scale("small") is SMALL_SCALE
    assert resolve_scale(TINY_SCALE) is TINY_SCALE
    with pytest.raises(ValueError):
        resolve_scale("huge")
    assert PAPER_SCALE.scaled_gpus(128) == 128
    assert SMALL_SCALE.scaled_gpus(128) == 32
    assert SMALL_SCALE.scaled_gpus(128) % 4 == 0
    assert TINY_SCALE.scaled_gpus(8, minimum=8) == 8


def test_job_helpers_match_paper_settings():
    opt = opt_350m_job()
    neo = gpt_neo_job()
    assert opt.global_batch_size == 2048
    assert opt.sequence_length == 2048
    assert neo.model.name == "GPT-Neo-2.7B"


def test_topology_helpers():
    assert a100_topology(32).total_gpus() == 32
    assert v100_topology(16).gpus_by_type() == {"V100-16": 16}
    mixed = mixed_a100_v100_topology(16, 32)
    assert mixed.gpus_by_type() == {"A100-40": 16, "V100-16": 32}
    geo = geo_topology(8, ["us-central1-a", "us-west1-a"])
    assert geo.total_gpus() == 16
    assert len(geo.regions) == 2
    assert gh200_topology(4).gpus_by_type() == {"GH200-96": 16}
    rtx = rtx_heterogeneous_topology()
    assert set(rtx.gpu_types()) == {"TitanRTX-24", "RTX2080-11", "RTX3090-24"}
    with pytest.raises(ValueError):
        a100_topology(30)
