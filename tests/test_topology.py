"""Unit tests for cluster topologies and quotas."""

import pytest

from repro.hardware.network import LinkClass
from repro.hardware.quotas import QuotaSet, ResourceQuota
from repro.hardware.topology import ClusterTopology


def make_topology() -> ClusterTopology:
    return ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 4, "n1-standard-v100-4": 2},
        "us-central1-b": {"a2-highgpu-4g": 2},
        "us-west1-a": {"a2-highgpu-4g": 1},
    })


def test_zone_and_region_queries():
    topo = make_topology()
    assert topo.zones == ["us-central1-a", "us-central1-b", "us-west1-a"]
    assert topo.regions == ["us-central1", "us-west1"]
    assert topo.zones_in_region("us-central1") == ["us-central1-a", "us-central1-b"]
    assert topo.region_of("us-west1-a") == "us-west1"


def test_gpu_counting():
    topo = make_topology()
    assert topo.node_count("us-central1-a", "a2-highgpu-4g") == 4
    assert topo.gpu_count(zone="us-central1-a") == 4 * 4 + 2 * 4
    assert topo.gpu_count(gpu_type="A100-40") == (4 + 2 + 1) * 4
    assert topo.total_gpus() == 36
    assert topo.gpus_by_type() == {"A100-40": 28, "V100-16": 8}
    assert topo.gpu_types() == ["A100-40", "V100-16"]


def test_link_class_between_zones():
    topo = make_topology()
    assert topo.link_class("us-central1-a", "us-central1-a") is LinkClass.INTRA_ZONE
    assert topo.link_class("us-central1-a", "us-central1-b") is LinkClass.INTER_ZONE
    assert topo.link_class("us-central1-a", "us-west1-a") is LinkClass.INTER_REGION


def test_restrict_and_merge():
    topo = make_topology()
    a100_only = topo.restricted_to_gpu("A100-40")
    assert a100_only.gpus_by_type() == {"A100-40": 28}
    central = topo.restricted_to_zones(["us-central1-a"])
    assert central.zones == ["us-central1-a"]
    merged = a100_only.merge(central)
    assert merged.node_count("us-central1-a", "a2-highgpu-4g") == 8


def test_with_nodes_and_homogeneous_constructors():
    topo = ClusterTopology.homogeneous("a2-highgpu-4g", 3, zone="us-central1-a")
    assert topo.total_gpus() == 12
    grown = topo.with_nodes("us-central1-a", "a2-highgpu-4g", 5)
    assert grown.total_gpus() == 20
    assert topo.total_gpus() == 12  # original untouched


def test_negative_node_count_rejected():
    with pytest.raises(ValueError):
        ClusterTopology(nodes={"us-central1-a": {"a2-highgpu-4g": -1}})


def test_unknown_node_type_rejected():
    with pytest.raises(KeyError):
        ClusterTopology(nodes={"us-central1-a": {"no-such-node": 1}})


def test_describe_mentions_every_zone():
    topo = make_topology()
    text = topo.describe()
    for zone in topo.zones:
        assert zone in text
    assert ClusterTopology().describe() == "(empty topology)"


# -- quotas -------------------------------------------------------------------

def test_quota_basicproperties():
    quota = ResourceQuota("us-central1-a", "a2-highgpu-4g", 4)
    assert quota.max_gpus == 16
    with pytest.raises(ValueError):
        ResourceQuota("us-central1-a", "a2-highgpu-4g", -1)


def test_quota_set_totals_and_clamp():
    quotas = QuotaSet().add("us-central1-a", "a2-highgpu-4g", 8) \
                       .add("us-central1-b", "a2-highgpu-4g", 8)
    assert quotas.total_gpus() == 64
    assert quotas.zones == ["us-central1-a", "us-central1-b"]

    available = ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 3},
        "us-central1-b": {"a2-highgpu-4g": 20},
    })
    clamped = quotas.clamp(available)
    assert clamped.node_count("us-central1-a", "a2-highgpu-4g") == 3
    assert clamped.node_count("us-central1-b", "a2-highgpu-4g") == 8


def test_quota_set_roundtrip_with_topology():
    topo = make_topology()
    quotas = QuotaSet.from_topology(topo)
    assert quotas.to_topology().gpus_by_type() == topo.gpus_by_type()
    assert quotas.max_nodes("us-central1-a", "a2-highgpu-4g") == 4
