"""Integration tests for elastic training sessions."""

import pytest

from repro.hardware.availability import AvailabilityEvent, AvailabilityTrace
from repro.hardware.topology import ClusterTopology
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.session import ElasticTrainingSession


@pytest.fixture()
def base_topology():
    return ClusterTopology.homogeneous("a2-highgpu-4g", 4)


def steady_trace(nodes=4, duration=1800.0):
    return AvailabilityTrace(events=[
        AvailabilityEvent(0.0, "us-central1-a", "a2-highgpu-4g", nodes)],
        duration_s=duration)


def test_steady_availability_trains_continuously(opt_env, opt_job, base_topology):
    session = ElasticTrainingSession(opt_env, opt_job)
    report = session.run(steady_trace(), base_topology=base_topology)
    assert report.iterations_completed > 0
    assert report.reconfigurations == 1          # initial deployment only
    assert report.iterations_lost_to_rollback == 0
    assert report.idle_time_s == 0.0
    assert report.goodput_iters_per_s > 0
    assert 0.9 <= report.availability_efficiency <= 1.0
    assert len(report.segments) == 1
    assert report.segments[0].gpus == 16


def test_outage_produces_idle_time(opt_env, opt_job, base_topology):
    trace = AvailabilityTrace(events=[
        AvailabilityEvent(0.0, "us-central1-a", "a2-highgpu-4g", 0),
        AvailabilityEvent(900.0, "us-central1-a", "a2-highgpu-4g", 4),
    ], duration_s=1800.0)
    session = ElasticTrainingSession(opt_env, opt_job)
    report = session.run(trace, base_topology=base_topology)
    assert report.idle_time_s >= 900.0 * 0.9
    assert report.iterations_completed > 0
    assert report.segments and report.segments[0].start_s >= 900.0


def test_preemption_causes_rollback(opt_env, opt_job, base_topology):
    trace = AvailabilityTrace(events=[
        AvailabilityEvent(0.0, "us-central1-a", "a2-highgpu-4g", 4),
        AvailabilityEvent(900.0, "us-central1-a", "a2-highgpu-4g", 1),
    ], duration_s=1800.0)
    session = ElasticTrainingSession(
        opt_env, opt_job,
        checkpoint_config=CheckpointConfig(interval_iterations=5))
    report = session.run(trace, base_topology=base_topology)
    assert report.reconfigurations >= 2
    assert report.reconfiguration_time_s > 0
    # Scale-down rolls back to the latest durable checkpoint; with an interval
    # of 5 iterations at most a handful of iterations are lost.
    assert 0 <= report.iterations_lost_to_rollback <= 10
    assert report.iterations_completed > 0


def test_simultaneous_pool_swap_with_equal_totals_reconfigures(opt_env,
                                                               opt_job):
    """Pool A shrinks while pool B grows at the same instant, keeping the
    total GPU count constant.  A total-GPU change detector misses this; the
    session must still react because the incumbent plan no longer fits."""
    base = ClusterTopology.single_zone(
        "us-central1-a", {"a2-highgpu-4g": 4, "n1-standard-v100-4": 4})
    trace = AvailabilityTrace(events=[
        AvailabilityEvent(0.0, "us-central1-a", "a2-highgpu-4g", 4),
        AvailabilityEvent(0.0, "us-central1-a", "n1-standard-v100-4", 0),
        # t=900: A100 pool loses 2 nodes, V100 pool gains 2 -- same total.
        AvailabilityEvent(900.0, "us-central1-a", "a2-highgpu-4g", 2),
        AvailabilityEvent(900.0, "us-central1-a", "n1-standard-v100-4", 2),
    ], duration_s=1800.0)
    session = ElasticTrainingSession(opt_env, opt_job)
    report = session.run(trace, base_topology=base)
    assert report.reconfigurations >= 2
    plan = session.controller.current_plan
    assert plan is not None
    assert plan.resource_allocation().fits_within(
        ClusterTopology.single_zone(
            "us-central1-a", {"a2-highgpu-4g": 2, "n1-standard-v100-4": 2}))


def test_max_iterations_caps_progress(opt_env, opt_job, base_topology):
    session = ElasticTrainingSession(opt_env, opt_job)
    report = session.run(steady_trace(duration=3600.0),
                         base_topology=base_topology, max_iterations=10)
    assert report.iterations_completed == 10


def test_more_frequent_checkpoints_increase_stall_time(opt_env, opt_job,
                                                       base_topology):
    frequent = ElasticTrainingSession(
        opt_env, opt_job, checkpoint_config=CheckpointConfig(interval_iterations=2))
    rare = ElasticTrainingSession(
        opt_env, opt_job, checkpoint_config=CheckpointConfig(interval_iterations=50))
    frequent_report = frequent.run(steady_trace(), base_topology=base_topology)
    rare_report = rare.run(steady_trace(), base_topology=base_topology)
    assert frequent_report.checkpoint_stall_s > rare_report.checkpoint_stall_s
    assert frequent_report.iterations_completed <= rare_report.iterations_completed
