"""Seeded violations for rule ``swallowed-exceptions``: the controller
eats the anytime truncation signal, a broad exception, and everything."""


def drain(tasks):
    done = 0
    for task in tasks:
        try:
            task()
        except SearchBudgetExhausted:
            continue
        except Exception:
            pass
        else:
            done += 1
    return done


def probe(fn):
    try:
        return fn()
    except:
        return None
