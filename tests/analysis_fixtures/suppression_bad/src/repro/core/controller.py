"""Seeded violation for the ``bad-suppression`` contract: a waiver with
no ``-- justification`` tail is itself a finding and suppresses nothing,
so the swallowed-exceptions finding below must still fire."""


def shutdown(workers):
    for worker in workers:
        try:
            worker.kill()
        # lint: disable=swallowed-exceptions
        except Exception:
            pass
