"""Clean twin of ``determinism_bad``: sorted sets, seeded RNG, and the
one sanctioned clock read carries its justification."""

import time

import numpy as np


def seeded_draw(n: int, seed: int):
    return np.random.default_rng(seed).random(n)


def order(values):
    return sorted(set(values))


def stamp() -> float:
    # lint: disable=determinism -- observability stamp only; the value is
    # reported, never compared against anything that branches the search.
    return time.perf_counter()
