"""Clean twin of ``hot_loop_bad``: in-place fused kernel, with the one
legitimate (row-sized) copy carrying its justification."""

import numpy as np

from repro.core.hotpath import hot_path


@hot_path
def fuse_scores(scores, gate, fallback, out):
    np.multiply(scores, gate, out=out)
    np.add(out, fallback, out=out)
    # lint: disable=hot-loop-alloc -- row-sized gather (one row, not a
    # (rows, combos) temporary); the output contract requires a snapshot.
    head = fallback[:1].copy()
    return out, head
