"""Seeded violations for rule ``hot-loop-alloc``: fresh full-size
temporaries inside a ``@hot_path`` kernel."""

import numpy as np

from repro.core.hotpath import hot_path


@hot_path
def fuse_scores(scores, gate, fallback):
    selected = np.where(gate, scores, fallback)
    widened = selected.astype(np.float64)
    return widened.copy()
