"""Seeded violations for rule ``cache-key``.

``mystery_knob`` is read by the solve but folded into no key;
``unused_knob`` is never read at all (dead field).
"""

from dataclasses import dataclass


@dataclass
class DPSolverConfig:
    #: Folded into the signature below (via the ``limit`` alias).
    max_states: int = 8
    #: Read by solve() but missing from the signature -- the violation.
    mystery_knob: int = 3
    #: Never read anywhere -- the dead-field violation.
    unused_knob: int = 0


class DPSolver:
    def __init__(self, config: DPSolverConfig) -> None:
        self.config = config

    def solve(self, root):
        limit = self.config.max_states
        signature = (root, limit)
        depth = self.config.mystery_knob
        return self._expand(signature, depth)

    @staticmethod
    def _expand(signature, depth):
        return signature, depth
