"""Clean twin of ``exceptions_bad``: every degradation is a recorded
decision, and the handlers name what they catch."""


def drain(tasks, log):
    done = 0
    for task in tasks:
        try:
            task()
        except SearchBudgetExhausted as exc:
            log.append(("truncated", exc))
        except Exception as exc:
            log.append(("failed", exc))
        else:
            done += 1
    return done


def probe(fn, log):
    try:
        return fn()
    except ValueError as exc:
        log.append(("rejected", exc))
        return None
