"""Seeded violations for rule ``determinism``: clocks, unseeded RNG and
hash-order set iteration in a plan-affecting core module."""

import random
import time

import numpy as np


def jitter() -> float:
    return time.time() + random.random()


def stamp() -> float:
    return time.perf_counter()


def draw(n: int):
    return np.random.rand(n)


def order(values):
    return [value for value in {v for v in values}]


def pick(values):
    return list({1, 2, 3})
