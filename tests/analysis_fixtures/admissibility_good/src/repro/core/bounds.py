"""Clean twin of ``admissibility_bad``: both bounds are referenced by
this fixture's own corpus (``tests/corpus.py``)."""


def route_cost_lb(weights) -> float:
    """Admissible lower bound on any route's total cost."""
    return 0.0


def egress_floor(bytes_out: int) -> float:
    return 0.0
