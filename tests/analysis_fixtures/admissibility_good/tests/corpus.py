"""Corpus stub: the admissibility property suite of this fixture.

Named ``corpus.py`` (not ``test_*.py``) so pytest never collects it.
"""

PROPERTY_SUITE = ("route_cost_lb", "egress_floor")
