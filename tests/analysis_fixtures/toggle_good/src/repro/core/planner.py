"""Clean twin of ``toggle_bad``: the toggle appears in this fixture's own
test corpus (``tests/corpus.py``)."""

from dataclasses import dataclass


@dataclass
class PlannerConfig:
    #: Merge strategy switch; byte-identical plans either way (the
    #: fixture corpus's equivalence matrix exercises both settings).
    use_fast_merge: bool = True
