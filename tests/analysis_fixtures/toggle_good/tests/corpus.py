"""Corpus stub: the equivalence matrix this fixture's toggles live in.

Named ``corpus.py`` (not ``test_*.py``) so pytest never collects it; the
linter's corpus scan reads it regardless of name.
"""

TOGGLE_MATRIX = {"use_fast_merge": (True, False)}
