"""Seeded violations for rule ``admissibility``: claimed bounds that no
test references by name."""


def route_cost_lb(weights) -> float:
    """Admissible lower bound on any route's total cost."""
    return 0.0


def egress_floor(bytes_out: int) -> float:
    return 0.0
