"""Clean twin of ``cache_key_bad``: every field keyed, marked or removed.

``mystery_knob`` now reaches the signature; ``engine_threshold`` is
exempt through its value-preservation marker; the dead field is gone.
"""

from dataclasses import dataclass


@dataclass
class DPSolverConfig:
    #: Folded into the signature below (via the ``limit`` alias).
    max_states: int = 8
    #: Folded into the signature directly.
    mystery_knob: int = 3
    #: Dispatch threshold; results are bit-identical on either route
    #: (equivalence test), so no cached artifact can depend on it.
    engine_threshold: int = 64


class DPSolver:
    def __init__(self, config: DPSolverConfig) -> None:
        self.config = config

    def solve(self, root):
        limit = self.config.max_states
        signature = (root, limit, self.config.mystery_knob)
        if root and len(root) > self.config.engine_threshold:
            return self._expand(signature, batched=True)
        return self._expand(signature, batched=False)

    @staticmethod
    def _expand(signature, batched):
        return signature, batched
