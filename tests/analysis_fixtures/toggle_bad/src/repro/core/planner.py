"""Seeded violation for rule ``toggle-coverage``: a boolean toggle the
test corpus never mentions (this fixture root has no tests/ at all)."""

from dataclasses import dataclass


@dataclass
class PlannerConfig:
    #: Merge strategy switch; byte-identical plans either way -- but no
    #: equivalence matrix exercises it, which is the violation.
    use_fast_merge: bool = True
