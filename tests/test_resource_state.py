"""Unit tests for the resource-state engine (codec, kernels, layered DP).

The codec's bijection contract (module docstring of
``repro.core.resource_state``) is what keeps plans byte-identical across
the tuple -> array encoding change, so it is tested directly here; the
layered engine's end-to-end equivalence with the exhaustive recursion is
covered both here (small cases) and by the solver property suites.
"""

import numpy as np
import pytest

from repro.core.dp_solver import DPSolverConfig
from repro.core.resource_state import (
    STATE_DTYPE,
    ResourceStateCodec,
    StageComboTable,
)

from test_dp_solver import build_solver


ROOT = ((("us-central1-a", "a2-highgpu-4g"), 4),
        (("us-central1-a", "n1-standard-v100-4"), 2),
        (("us-west1-a", "a2-highgpu-4g"), 3))


def test_codec_round_trip_bijection():
    codec = ResourceStateCodec(ROOT)
    assert codec.num_slots == 3
    # encode(decode(v)) == v and decode(encode(t)) == t on reachable states.
    assert codec.decode(codec.encode(ROOT)) == ROOT
    partial = (ROOT[0], ROOT[2])  # middle slot exhausted -> dropped pair
    state = codec.encode(partial)
    assert state.tolist() == [4, 0, 3]
    assert codec.decode(state) == partial
    assert np.array_equal(codec.encode(codec.decode(state)), state)


def test_codec_state_key_is_injective_and_fixed_width():
    codec = ResourceStateCodec(ROOT)
    seen = {}
    for a in range(3):
        for b in range(3):
            state = np.array([a, b, 1], dtype=STATE_DTYPE)
            key = codec.state_key(state)
            assert len(key) == codec.num_slots * state.itemsize
            assert key not in seen
            seen[key] = (a, b)


def test_codec_kernels_match_scalar_semantics():
    codec = ResourceStateCodec(ROOT)
    state = codec.encode(ROOT)
    caps = codec.caps_vector({"a2-highgpu-4g": 2})
    assert caps.tolist() == [2, 0, 2]
    clamped = codec.clamp(state, caps)
    assert clamped.tolist() == [2, 0, 2]
    # No-op clamp returns the input object (allocation-free common case).
    assert codec.clamp(clamped, caps) is clamped

    needs = np.array([1, 0, 3], dtype=STATE_DTYPE)
    assert codec.subtract(state, needs).tolist() == [3, 2, 0]
    assert codec.subtract(needs, state) is None  # underflow -> infeasible


def test_fitting_combos_preserves_master_order_and_limit():
    codec = ResourceStateCodec(ROOT)
    entries = []
    for req in ([1, 0, 0], [0, 1, 0], [2, 0, 0], [0, 0, 2], [4, 2, 0]):
        items = tuple((ROOT[i][0], count) for i, count in enumerate(req)
                      if count)
        entries.append([None, None, None, items, 0.0])
    table = codec.combo_table(entries)
    assert isinstance(table, StageComboTable)
    state = np.array([2, 1, 0], dtype=STATE_DTYPE)
    # Fitting combos in master order: rows 0, 1, 2 fit; 3 and 4 do not.
    assert codec.fitting_combos(table, state, limit=16).tolist() == [0, 1, 2]
    assert codec.fitting_combos(table, state, limit=2).tolist() == [0, 1]


@pytest.mark.parametrize("pp,dp", [(1, 2), (2, 2), (3, 1), (2, 4)])
@pytest.mark.parametrize("goal_cost", [False, True])
def test_engine_matches_exhaustive_recursion(opt_env, opt_job, pp, dp,
                                             goal_cost):
    """The layered engine (enable_pruning=True) and the exhaustive
    recursion (enable_pruning=False) must choose identical assignments."""
    from repro.core.objectives import OptimizationGoal

    goal = (OptimizationGoal.MIN_COST if goal_cost
            else OptimizationGoal.MAX_THROUGHPUT)
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    engine_solver = build_solver(opt_env, opt_job, pp=pp, dp=dp, goal=goal)
    engine_solver.engine_min_states = 0  # force the engine on a small pool
    reference = build_solver(opt_env, opt_job, pp=pp, dp=dp, goal=goal)
    reference.config = DPSolverConfig(enable_pruning=False)

    a = engine_solver.solve(dict(resources))
    b = reference.solve(dict(resources))
    assert (a is None) == (b is None)
    if a is None:
        return
    assert [x.placements for x in a.assignments] == \
        [x.placements for x in b.assignments]
    for field in ("max_stage_time_s", "sum_stage_time_s", "max_sync_time_s",
                  "cost_rate_usd_per_s"):
        assert getattr(a, field) == getattr(b, field)  # bitwise


def test_engine_two_zone_topology(opt_env_geo, opt_job):
    resources = {("us-central1-a", "a2-highgpu-4g"): 2,
                 ("us-west1-a", "a2-highgpu-4g"): 2}
    engine_solver = build_solver(opt_env_geo, opt_job, pp=2, dp=2,
                                 node_types=("a2-highgpu-4g",))
    engine_solver.engine_min_states = 0  # force the engine on a small pool
    reference = build_solver(opt_env_geo, opt_job, pp=2, dp=2,
                             node_types=("a2-highgpu-4g",))
    reference.config = DPSolverConfig(enable_pruning=False)
    a = engine_solver.solve(dict(resources))
    b = reference.solve(dict(resources))
    assert (a is None) == (b is None)
    if a is not None:
        assert [x.placements for x in a.assignments] == \
            [x.placements for x in b.assignments]


def test_engine_reports_layer_states_as_nodes(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    solver.engine_min_states = 0  # force the engine on a small pool
    resources = {("us-central1-a", "a2-highgpu-4g"): 4}
    before = solver.stats.nodes_explored
    assert solver.solve(resources) is not None
    assert solver.stats.nodes_explored > before
    assert solver._engine is not None
    assert solver._engine.states_computed > 0


def test_engine_infeasible_root_returns_none(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=4)
    solver.engine_min_states = 0  # force the engine on a small pool
    # One node cannot host four replicas per stage over two stages.
    assert solver.solve({("us-central1-a", "a2-highgpu-4g"): 1}) is None
