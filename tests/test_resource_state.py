"""Unit tests for the resource-state engine (codec, kernels, layered DP).

The codec's bijection contract (module docstring of
``repro.core.resource_state``) is what keeps plans byte-identical across
the tuple -> array encoding change, so it is tested directly here; the
layered engine's end-to-end equivalence with the exhaustive recursion is
covered both here (small cases) and by the solver property suites.
"""

import numpy as np
import pytest

from repro.core.dp_solver import DPSolverConfig
from repro.core.resource_state import (
    STATE_DTYPE,
    ResourceStateCodec,
    ResourceStateEngine,
    StageComboTable,
    StageKernelTable,
    compute_forward_layers,
    dedup_states,
    forward_signature,
    layer_pack_weights,
)

from test_dp_solver import build_solver


ROOT = ((("us-central1-a", "a2-highgpu-4g"), 4),
        (("us-central1-a", "n1-standard-v100-4"), 2),
        (("us-west1-a", "a2-highgpu-4g"), 3))


def test_codec_round_trip_bijection():
    codec = ResourceStateCodec(ROOT)
    assert codec.num_slots == 3
    # encode(decode(v)) == v and decode(encode(t)) == t on reachable states.
    assert codec.decode(codec.encode(ROOT)) == ROOT
    partial = (ROOT[0], ROOT[2])  # middle slot exhausted -> dropped pair
    state = codec.encode(partial)
    assert state.tolist() == [4, 0, 3]
    assert codec.decode(state) == partial
    assert np.array_equal(codec.encode(codec.decode(state)), state)


def test_codec_state_key_is_injective_and_fixed_width():
    codec = ResourceStateCodec(ROOT)
    seen = {}
    for a in range(3):
        for b in range(3):
            state = np.array([a, b, 1], dtype=STATE_DTYPE)
            key = codec.state_key(state)
            assert len(key) == codec.num_slots * state.itemsize
            assert key not in seen
            seen[key] = (a, b)


def test_codec_kernels_match_scalar_semantics():
    codec = ResourceStateCodec(ROOT)
    state = codec.encode(ROOT)
    caps = codec.caps_vector({"a2-highgpu-4g": 2})
    assert caps.tolist() == [2, 0, 2]
    clamped = codec.clamp(state, caps)
    assert clamped.tolist() == [2, 0, 2]
    # No-op clamp returns the input object (allocation-free common case).
    assert codec.clamp(clamped, caps) is clamped

    needs = np.array([1, 0, 3], dtype=STATE_DTYPE)
    assert codec.subtract(state, needs).tolist() == [3, 2, 0]
    assert codec.subtract(needs, state) is None  # underflow -> infeasible


def test_fitting_combos_preserves_master_order_and_limit():
    codec = ResourceStateCodec(ROOT)
    entries = []
    for req in ([1, 0, 0], [0, 1, 0], [2, 0, 0], [0, 0, 2], [4, 2, 0]):
        items = tuple((ROOT[i][0], count) for i, count in enumerate(req)
                      if count)
        entries.append([None, None, None, items, 0.0])
    table = codec.combo_table(entries)
    assert isinstance(table, StageComboTable)
    state = np.array([2, 1, 0], dtype=STATE_DTYPE)
    # Fitting combos in master order: rows 0, 1, 2 fit; 3 and 4 do not.
    assert codec.fitting_combos(table, state, limit=16).tolist() == [0, 1, 2]
    assert codec.fitting_combos(table, state, limit=2).tolist() == [0, 1]


# ---------------------------------------------------------------------------
# Forward-pass machinery: packed dedup, chunking, signatures
# ---------------------------------------------------------------------------

def test_layer_pack_weights_are_injective_over_reachable_states():
    root = np.array([4, 2, 3], dtype=STATE_DTYPE)
    weights = layer_pack_weights(root)
    assert weights is not None
    seen = set()
    for a in range(5):
        for b in range(3):
            for c in range(4):
                packed = int(np.array([a, b, c], dtype=STATE_DTYPE) @ weights)
                assert packed not in seen
                seen.add(packed)


def test_layer_pack_weights_overflow_falls_back_to_none():
    # Radix product beyond int64 cannot pack exactly -> row-wise fallback.
    huge = np.full(8, 2 ** 9, dtype=STATE_DTYPE)  # (2^9+1)^8 > 2^63
    assert layer_pack_weights(huge) is None
    small = np.full(8, 2 ** 6, dtype=STATE_DTYPE)
    assert layer_pack_weights(small) is not None


def test_dedup_states_matches_rowwise_unique():
    rng = np.random.default_rng(7)
    root = np.array([6, 3, 5, 2], dtype=STATE_DTYPE)
    # Reachable states stay within the root's per-slot counts, which is
    # what makes the radix packing injective.
    children = rng.integers(0, root + 1, size=(200, 4)).astype(STATE_DTYPE)
    weights = layer_pack_weights(root)
    packed_uniq, packed_inv = dedup_states(children, weights)
    row_uniq, row_inv = dedup_states(children, None)
    # Same unique *set* (order may differ) and a consistent inverse map.
    assert {tuple(r) for r in packed_uniq.tolist()} == \
        {tuple(r) for r in row_uniq.tolist()}
    assert np.array_equal(packed_uniq[packed_inv], children)
    assert np.array_equal(row_uniq[row_inv], children)


def _toy_forward_inputs():
    """Two-stage forward problem small enough to eyeball."""
    root = np.array([5, 4], dtype=STATE_DTYPE)
    reqs = [
        np.array([[1, 0], [0, 1], [2, 1]], dtype=STATE_DTYPE),
        np.array([[1, 0], [0, 2]], dtype=STATE_DTYPE),
    ]
    caps = [np.array([9, 9], dtype=STATE_DTYPE),
            np.array([3, 9], dtype=STATE_DTYPE)]
    clamp_active = [False, True]
    return reqs, caps, clamp_active, root


def test_chunked_forward_matches_unchunked():
    """Chunking the fit-test along the state axis is a pure memory knob."""
    reqs, caps, clamp_active, root = _toy_forward_inputs()
    whole = compute_forward_layers(reqs, caps, clamp_active, 16, root)
    chunked = compute_forward_layers(reqs, caps, clamp_active, 16, root,
                                     chunk_elems=1)
    assert whole.states_computed == chunked.states_computed
    assert whole.dedup_hits == chunked.dedup_hits
    for a, b in zip(whole.states, chunked.states):
        assert np.array_equal(a, b)
    for a, b in zip(whole.child_row, chunked.child_row):
        assert (a is None) == (b is None)
        if a is not None:
            assert np.array_equal(a, b)
    assert np.array_equal(whole.last_sel, chunked.last_sel)


def test_forward_clamps_children_at_next_stage_caps():
    reqs, caps, clamp_active, root = _toy_forward_inputs()
    forward = compute_forward_layers(reqs, caps, clamp_active, 16, root)
    # Every stage-1 state obeys the stage-1 suffix clamp.
    assert (forward.states[1] <= caps[1]).all()
    # The truncation limit caps fitting combos per state.
    limited = compute_forward_layers(reqs, caps, clamp_active, 1, root)
    assert ((limited.child_row[0] >= 0).sum(axis=1) <= 1).all()


def test_forward_signature_discriminates_forward_inputs():
    reqs, caps, clamp_active, root = _toy_forward_inputs()
    base = forward_signature(root, reqs, caps, clamp_active, 16)
    assert base == forward_signature(root, reqs, caps, clamp_active, 16)
    assert base != forward_signature(root, reqs, caps, clamp_active, 8)
    other_root = np.array([5, 3], dtype=STATE_DTYPE)
    assert base != forward_signature(other_root, reqs, caps, clamp_active, 16)
    reordered = [reqs[0][::-1].copy(), reqs[1]]
    assert base != forward_signature(root, reordered, caps, clamp_active, 16)
    # An inactive clamp does not discriminate (its caps are never applied).
    other_caps = [caps[0], caps[1]]
    unclamped = forward_signature(root, reqs, other_caps, [False, False], 16)
    assert unclamped != base  # clamp_active[1] differs -> different passes


@pytest.mark.parametrize("pp,dp", [(1, 2), (2, 2), (3, 1), (2, 4)])
@pytest.mark.parametrize("goal_cost", [False, True])
def test_engine_matches_exhaustive_recursion(opt_env, opt_job, pp, dp,
                                             goal_cost):
    """The layered engine (enable_pruning=True) and the exhaustive
    recursion (enable_pruning=False) must choose identical assignments."""
    from repro.core.objectives import OptimizationGoal

    goal = (OptimizationGoal.MIN_COST if goal_cost
            else OptimizationGoal.MAX_THROUGHPUT)
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    engine_solver = build_solver(opt_env, opt_job, pp=pp, dp=dp, goal=goal)
    engine_solver.engine_min_states = 0  # force the engine on a small pool
    reference = build_solver(opt_env, opt_job, pp=pp, dp=dp, goal=goal)
    reference.config = DPSolverConfig(enable_pruning=False)

    a = engine_solver.solve(dict(resources))
    b = reference.solve(dict(resources))
    assert (a is None) == (b is None)
    if a is None:
        return
    assert [x.placements for x in a.assignments] == \
        [x.placements for x in b.assignments]
    for field in ("max_stage_time_s", "sum_stage_time_s", "max_sync_time_s",
                  "cost_rate_usd_per_s"):
        assert getattr(a, field) == getattr(b, field)  # bitwise


def test_engine_two_zone_topology(opt_env_geo, opt_job):
    resources = {("us-central1-a", "a2-highgpu-4g"): 2,
                 ("us-west1-a", "a2-highgpu-4g"): 2}
    engine_solver = build_solver(opt_env_geo, opt_job, pp=2, dp=2,
                                 node_types=("a2-highgpu-4g",))
    engine_solver.engine_min_states = 0  # force the engine on a small pool
    reference = build_solver(opt_env_geo, opt_job, pp=2, dp=2,
                             node_types=("a2-highgpu-4g",))
    reference.config = DPSolverConfig(enable_pruning=False)
    a = engine_solver.solve(dict(resources))
    b = reference.solve(dict(resources))
    assert (a is None) == (b is None)
    if a is not None:
        assert [x.placements for x in a.assignments] == \
            [x.placements for x in b.assignments]


def test_engine_reports_layer_states_as_nodes(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    solver.engine_min_states = 0  # force the engine on a small pool
    resources = {("us-central1-a", "a2-highgpu-4g"): 4}
    before = solver.stats.nodes_explored
    assert solver.solve(resources) is not None
    assert solver.stats.nodes_explored > before
    assert solver._engine is not None
    assert solver._engine.states_computed > 0


def test_engine_infeasible_root_returns_none(opt_env, opt_job):
    solver = build_solver(opt_env, opt_job, pp=2, dp=4)
    solver.engine_min_states = 0  # force the engine on a small pool
    # One node cannot host four replicas per stage over two stages.
    assert solver.solve({("us-central1-a", "a2-highgpu-4g"): 1}) is None


# ---------------------------------------------------------------------------
# Shared backward structures + budget bound tables
# ---------------------------------------------------------------------------

def test_forward_row_cols_matches_local_computation():
    reqs, caps, clamp_active, root = _toy_forward_inputs()
    forward = compute_forward_layers(reqs, caps, clamp_active, 16, root)
    crow = forward.child_row[0][0]
    cols, child = forward.row_cols(0, 0, last=False)
    assert np.array_equal(cols, (crow >= 0).nonzero()[0])
    assert np.array_equal(child, crow[cols])
    last_cols, last_child = forward.row_cols(1, 0, last=True)
    assert np.array_equal(last_cols, forward.last_sel[0].nonzero()[0])
    assert last_child is None
    assert forward.row_cols(0, 0, last=False)[0] is cols  # cached


def test_shared_backward_is_bitwise_identical(opt_env, opt_job):
    """run_backward with the shared child gathers must produce bitwise the
    same layer tables as the per-candidate computation."""
    solver_a = build_solver(opt_env, opt_job, pp=2, dp=2)
    solver_a.engine_min_states = 0
    solver_b = build_solver(opt_env, opt_job, pp=2, dp=2)
    solver_b.config = DPSolverConfig(engine_min_states=0,
                                     shared_backward=False)
    solver_b.engine_min_states = 0
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    assert solver_a.solve(dict(resources)) is not None
    assert solver_b.solve(dict(resources)) is not None
    shared, local = solver_a._engine, solver_b._engine
    assert shared is not None and local is not None
    for name in ("arg", "value", "time_value", "sum_t", "max_t", "sync_t",
                 "rate"):
        for a, b in zip(getattr(shared, name), getattr(local, name)):
            assert np.array_equal(a, b)


def test_shared_argmin_kernel_matches_dense_over_random_pools(opt_env,
                                                              opt_job):
    """Randomized equivalence sweep for the CSR segmented-argmin backward
    kernel (``shared_backward_argmin``): over seeded random pools x
    objectives x (pp, dp) shapes, the shared kernel must reproduce the
    dense per-candidate reduction bit-for-bit -- same scores, same
    first-min tie-breaks (``arg``), same infeasible-row normal form --
    and the two solvers must return identical solutions."""
    import random

    from repro.core.objectives import OptimizationGoal

    rng = random.Random(20260808)
    compared = 0
    for _ in range(12):
        resources = {("us-central1-a", "a2-highgpu-4g"): rng.randint(0, 4),
                     ("us-central1-a", "n1-standard-v100-4"): rng.randint(0, 4)}
        resources = {key: count for key, count in resources.items() if count}
        if not resources:
            continue
        pp = rng.choice([1, 2, 3])
        dp = rng.choice([1, 2, 4])
        goal = rng.choice([OptimizationGoal.MAX_THROUGHPUT,
                           OptimizationGoal.MIN_COST])

        shared = build_solver(opt_env, opt_job, pp=pp, dp=dp, goal=goal)
        # density 1.0 forces the CSR kernel on every layer, dense or not --
        # the default dispatch would route these small dense pools to the
        # broadcast path and the sweep would compare dense against dense.
        shared.config = DPSolverConfig(engine_min_states=0,
                                       shared_backward_density=1.0)
        shared.engine_min_states = 0
        dense = build_solver(opt_env, opt_job, pp=pp, dp=dp, goal=goal)
        dense.config = DPSolverConfig(engine_min_states=0,
                                      shared_backward_argmin=False)
        dense.engine_min_states = 0

        a = shared.solve(dict(resources))
        b = dense.solve(dict(resources))
        assert (a is None) == (b is None)
        if a is not None:
            assert [x.placements for x in a.assignments] == \
                [x.placements for x in b.assignments]
        if shared._engine is None or dense._engine is None:
            continue
        for name in ("arg", "value", "time_value", "sum_t", "max_t",
                     "sync_t", "rate"):
            for sa, da in zip(getattr(shared._engine, name),
                              getattr(dense._engine, name)):
                assert np.array_equal(sa, da)
        compared += 1
    assert compared >= 6


def _tie_break_engine(shared_argmin: bool) -> ResourceStateEngine:
    """One-stage engine whose two cheapest combos tie exactly, over a
    shared ForwardLayers (so the CSR path exercises its skeleton cache)."""
    root_pairs = ((("z", "a"), 3), (("z", "b"), 3))
    codec = ResourceStateCodec(root_pairs)
    entries = []
    for row in ([1, 0], [0, 1], [1, 1]):
        items = tuple((root_pairs[i][0], count)
                      for i, count in enumerate(row) if count)
        entries.append([None, None, None, items, 0.0])
    plain = codec.combo_table(entries)
    # Combos 0 and 1 score identically (the intended minimum); combo 2 is
    # strictly worse.  First-min tie-break must select combo 0.
    table = StageKernelTable(
        entries=plain.entries, req=plain.req, pairs=plain.pairs,
        compute=np.array([1.0, 1.0, 2.0]),
        sync=np.array([0.25, 0.25, 0.25]),
        rate=np.array([3.0, 3.0, 3.0]))
    root = codec.encode(root_pairs)
    forward = compute_forward_layers([table.req], [root.copy()], [False], 16,
                                     root)
    # Density 1.0 forces the CSR route regardless of the layer's density
    # (the dispatch would send this dense toy layer down the broadcast
    # path and the kernel under test would never run).
    return ResourceStateEngine(codec, [table], forward,
                               num_microbatches=2, minimize_cost=False,
                               shared_argmin=shared_argmin,
                               shared_argmin_max_density=1.0)


def test_shared_argmin_tie_break_is_first_minimum():
    """Deliberate score ties: both kernels must pick the first minimum in
    master ranking order, bitwise-identically."""
    engines = []
    for shared in (True, False):
        engine = _tie_break_engine(shared)
        engine.run_backward()
        engines.append(engine)
    shared, dense = engines
    for name in ("arg", "value", "time_value", "sum_t", "max_t", "sync_t",
                 "rate"):
        assert np.array_equal(getattr(shared, name)[0],
                              getattr(dense, name)[0])
    root_row = 0
    assert shared.arg[0][root_row] == 0  # first of the tied pair


def test_shared_argmin_skeleton_is_cached_on_forward_layers():
    """Two backward passes over one ForwardLayers share the CSR skeleton:
    the second engine's pass must count a reuse hit per layer."""
    first = _tie_break_engine(True)
    first.run_backward()
    assert first.shared_skeleton_hits == 0  # built the skeleton
    second = ResourceStateEngine(first.codec, first.tables, first.forward,
                                 num_microbatches=4, minimize_cost=True,
                                 shared_argmin=True,
                                 shared_argmin_max_density=1.0)
    second.run_backward()
    assert second.shared_skeleton_hits == 1  # one stage, reused


def test_engine_budget_tables_match_scalar_probes(opt_env, opt_job):
    """The whole-layer dominance vectors must agree element-for-element
    with the per-row feasible/projected_cost probes they replace."""
    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    solver.engine_min_states = 0
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    assert solver.solve(dict(resources)) is not None
    engine = solver._engine
    for stage in range(2):
        cost, feasible = engine.budget_tables(stage)
        for row in range(engine.states[stage].shape[0]):
            assert bool(feasible[row]) == engine.feasible(stage, row)
            if feasible[row]:
                assert float(cost[row]) == engine.projected_cost(stage, row)


def test_budget_bounds_mark_infeasible_layers_infinite(opt_env, opt_job):
    """A suffix no combo chain can complete must carry +inf bounds, the
    same rows the engine's backward values mark infeasible."""
    from repro.core.resource_state import compute_budget_bounds

    solver = build_solver(opt_env, opt_job, pp=2, dp=2)
    solver.engine_min_states = 0
    resources = {("us-central1-a", "a2-highgpu-4g"): 4,
                 ("us-central1-a", "n1-standard-v100-4"): 4}
    assert solver.solve(dict(resources)) is not None
    engine = solver._engine
    bounds = compute_budget_bounds(engine.forward, engine.tables,
                                   solver.num_microbatches)
    for stage in range(2):
        infeasible = ~np.isfinite(engine.value[stage])
        assert np.array_equal(~np.isfinite(bounds.cost_lb[stage]),
                              infeasible)
        assert np.array_equal(~np.isfinite(bounds.straggler_lb[stage]),
                              infeasible)
        # Feasible rows carry real, positive bounds.
        assert (bounds.cost_lb[stage][~infeasible] > 0).all()
        assert (bounds.straggler_lb[stage][~infeasible] > 0).all()
