"""Unit tests for the checkpoint manager."""

import pytest

from repro.core.plan import ParallelizationPlan
from repro.runtime.checkpoint import CheckpointConfig, CheckpointManager


@pytest.fixture()
def manager(opt_job):
    return CheckpointManager(job=opt_job,
                             config=CheckpointConfig(interval_iterations=10))


def plan(job, dp=2):
    return ParallelizationPlan.homogeneous(job, "a2-highgpu-4g", 2, dp, 4, 2)


def test_config_validation(opt_job):
    with pytest.raises(ValueError):
        CheckpointConfig(interval_iterations=0)
    with pytest.raises(ValueError):
        CheckpointConfig(host_snapshot_gbps=0)


def test_checkpoint_bytes_cover_optimizer_state(manager, opt_job):
    expected = opt_job.model.total_params * 12
    assert manager.checkpoint_bytes() == pytest.approx(expected)


def test_stall_and_drain_scale_with_cluster_size(manager, opt_job):
    small = plan(opt_job, dp=1)
    large = plan(opt_job, dp=4)
    assert manager.stall_time_s(large) < manager.stall_time_s(small)
    assert manager.drain_time_s(large) < manager.drain_time_s(small)
    assert manager.drain_time_s(small) > manager.stall_time_s(small)


def test_should_checkpoint_interval(manager):
    assert not manager.should_checkpoint(0)
    assert not manager.should_checkpoint(5)
    assert manager.should_checkpoint(10)
    assert manager.should_checkpoint(20)


def test_rollback_uses_latest_durable_checkpoint(manager):
    manager.record(iteration=10, started_at_s=100.0, durable_at_s=130.0)
    manager.record(iteration=20, started_at_s=200.0, durable_at_s=230.0)
    # Failure at t=210: the second checkpoint is not durable yet.
    assert manager.latest_durable(210.0).iteration == 10
    assert manager.rollback_iterations(current_iteration=25, at_time_s=210.0) == 15
    # After the drain completes, rollback shrinks.
    assert manager.rollback_iterations(current_iteration=25, at_time_s=240.0) == 5


def test_rollback_without_any_checkpoint_loses_everything(manager):
    assert manager.latest_durable(50.0) is None
    assert manager.rollback_iterations(current_iteration=7, at_time_s=50.0) == 7


def test_record_validation(manager):
    with pytest.raises(ValueError):
        manager.record(iteration=5, started_at_s=10.0, durable_at_s=5.0)
