"""Anytime planning: cooperative cancellation, certified gaps, salvage.

Covers the deadline-robustness contract end to end:

* ``SearchBudget`` semantics (cheap ticks, sticky trips, zero-cost
  unbounded path);
* truncated solves return the pre-deadline incumbent with an admissible
  ``optimality_gap_bound`` -- verified against exhaustive search on
  randomized small pools;
* unbounded calls stay ``complete=True`` with an exact 0.0 gap, and the
  anytime fields survive the result JSON round trip;
* the fault-tolerant parallel driver salvages a SIGKILLed or wedged
  worker: the plan comes back, zero branches are lost, and the result is
  marked incomplete with the affected branches listed.
"""

import math
import os

import pytest

from repro.core.budget import SearchBudget, SearchBudgetExhausted
from repro.core.objectives import Objective, OptimizationGoal
from repro.core.planner import ParallelPlanner, PlannerConfig, SailorPlanner
from repro.core.serialization import plan_to_json, result_from_json, result_to_json
from repro.core.simulator import build_environment
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec


# ---------------------------------------------------------------------------
# SearchBudget unit semantics
# ---------------------------------------------------------------------------

def test_budget_maybe_returns_none_when_unbounded():
    """The unbounded path must cost literally one `is None` test."""
    assert SearchBudget.maybe(None, None) is None
    assert SearchBudget.maybe(deadline=1.0, max_ticks=None) is not None
    assert SearchBudget.maybe(deadline=None, max_ticks=10) is not None


def test_budget_node_cap_trips_exactly_and_stays_tripped():
    budget = SearchBudget(max_ticks=3)
    budget.tick()
    budget.tick()
    with pytest.raises(SearchBudgetExhausted) as excinfo:
        budget.tick()
    assert excinfo.value.reason == "node_budget"
    assert budget.exhausted
    # Sticky: every later tick re-raises immediately.
    with pytest.raises(SearchBudgetExhausted):
        budget.tick()
    assert budget.expired()


def test_budget_deadline_trips_and_expired_is_non_raising():
    budget = SearchBudget(deadline=0.0, check_interval=1)  # already past
    assert budget.expired()  # non-raising probe
    with pytest.raises(SearchBudgetExhausted) as excinfo:
        budget.tick()
    assert excinfo.value.reason == "deadline"


def test_budget_exhausted_carries_attached_progress():
    exc = SearchBudgetExhausted("deadline", ticks=42)
    exc.attach(nodes_explored=7, stage_memo_entries=3)
    assert exc.progress["nodes_explored"] == 7
    exc.attach(budget_memo_entries=1)
    assert exc.progress["stage_memo_entries"] == 3  # attach merges


# ---------------------------------------------------------------------------
# Truncated solves: incumbent + certified gap
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_job():
    return TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=256)


@pytest.fixture(scope="module")
def small_topology():
    return ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 4, "n1-standard-v100-4": 4}})


@pytest.fixture(scope="module")
def small_env(small_job, small_topology):
    return build_environment(small_job, small_topology, seed=7)


def _minimized_scalar(objective, evaluation) -> float:
    if objective.goal is OptimizationGoal.MIN_COST:
        return evaluation.cost_per_iteration_usd
    return evaluation.iteration_time_s


def test_node_budget_truncation_keeps_pre_deadline_incumbent(
        small_env, small_job, small_topology):
    """A budget that trips inside the DP solve loops (nonzero
    ``budget_interrupts``) must still return the incumbent found before the
    trip, marked incomplete with a finite positive gap."""
    full = SailorPlanner(small_env).plan(small_job, small_topology,
                                         Objective.max_throughput())
    assert full.complete and full.optimality_gap_bound == 0.0

    truncated = SailorPlanner(small_env, config=PlannerConfig(
        max_search_nodes=200)).plan(small_job, small_topology,
                                    Objective.max_throughput())
    assert truncated.found
    assert not truncated.complete
    assert truncated.incomplete_branches
    assert truncated.search_stats.budget_interrupts > 0
    assert 0.0 < truncated.optimality_gap_bound < math.inf
    assert truncated.search_stats.branches_incomplete == \
        len(truncated.incomplete_branches)
    assert (truncated.search_stats.branches_complete
            + truncated.search_stats.branches_incomplete) == \
        (full.search_stats.branches_complete
         + full.search_stats.branches_incomplete)
    # The incumbent is a genuinely feasible plan, never worse than nothing
    # and never better than the exhaustive optimum.
    assert truncated.evaluation.is_valid
    assert truncated.evaluation.iteration_time_s >= \
        full.evaluation.iteration_time_s - 1e-12


def test_budget_interrupt_inside_suffix_solve_keeps_incumbent(
        small_env, small_job, small_topology):
    """The deadline can land inside a budget suffix solve (the deepest hot
    loop); the call still returns the pre-trip incumbent."""
    unconstrained = SailorPlanner(small_env).plan(
        small_job, small_topology, Objective.max_throughput())
    budget_objective = Objective.max_throughput(
        max_cost_per_iteration_usd=(
            unconstrained.evaluation.cost_per_iteration_usd * 0.6))
    truncated = SailorPlanner(small_env, config=PlannerConfig(
        max_search_nodes=1000)).plan(small_job, small_topology,
                                     budget_objective)
    assert truncated.found
    assert not truncated.complete
    assert truncated.search_stats.budget_interrupts > 0
    assert truncated.evaluation.cost_per_iteration_usd <= \
        unconstrained.evaluation.cost_per_iteration_usd * 0.6 * 1.001
    assert 0.0 < truncated.optimality_gap_bound < math.inf


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_gap_bound_admissible_vs_exhaustive_on_randomized_small_pools(seed):
    """The certified bound's contract: for the minimized scalar ``v`` of
    the incumbent and reported gap ``g``, the unbounded optimum can never
    beat ``v * (1 - g)``.  Checked on randomized small pools against the
    exhaustive (unbounded) solve, across both objectives and a ladder of
    truncation points."""
    import random

    rng = random.Random(seed)
    nodes = {"a2-highgpu-4g": rng.randint(1, 3),
             "n1-standard-v100-4": rng.randint(1, 3)}
    topology = ClusterTopology(nodes={"us-central1-a": nodes})
    job = TrainingJobSpec(model=get_model("OPT-350M"),
                          global_batch_size=rng.choice([128, 256]))
    env = build_environment(job, topology, seed=seed)

    for objective in (Objective.max_throughput(), Objective.min_cost()):
        exhaustive = SailorPlanner(env).plan(job, topology, objective)
        assert exhaustive.found and exhaustive.complete
        best = _minimized_scalar(objective, exhaustive.evaluation)
        for max_nodes in (30, 100, 400):
            result = SailorPlanner(env, config=PlannerConfig(
                max_search_nodes=max_nodes)).plan(job, topology, objective)
            if not result.found:
                # No incumbent: the only admissible claim is "no bound".
                assert result.optimality_gap_bound == math.inf
                assert not result.complete
                continue
            gap = result.optimality_gap_bound
            assert 0.0 <= gap <= 1.0
            value = _minimized_scalar(objective, result.evaluation)
            certified_floor = value * (1.0 - gap)
            assert best >= certified_floor - 1e-9 * max(1.0, abs(best)), (
                f"inadmissible gap: certified floor {certified_floor} "
                f"exceeds exhaustive optimum {best} "
                f"(max_nodes={max_nodes}, objective={objective.goal})")
            if result.complete:
                assert gap == 0.0
                assert value == pytest.approx(best, rel=1e-12)


def test_unbounded_calls_complete_with_zero_gap(small_env, small_job,
                                                small_topology):
    """No deadline, no node budget: the anytime fields must be inert
    (complete, exact 0.0 gap, no cut branches) on both drivers."""
    objective = Objective.max_throughput()
    serial = SailorPlanner(small_env).plan(small_job, small_topology,
                                           objective)
    parallel = ParallelPlanner(small_env, max_workers=2).plan(
        small_job, small_topology, objective)
    for result in (serial, parallel):
        assert result.complete
        assert result.optimality_gap_bound == 0.0
        assert result.incomplete_branches == []
        assert result.search_stats.budget_interrupts == 0
        assert result.search_stats.branches_incomplete == 0
        assert result.search_stats.branches_complete > 0


def test_anytime_fields_survive_result_json_round_trip(small_env, small_job,
                                                       small_topology):
    truncated = SailorPlanner(small_env, config=PlannerConfig(
        max_search_nodes=200)).plan(small_job, small_topology,
                                    Objective.max_throughput())
    decoded = result_from_json(result_to_json(truncated))
    assert decoded.complete == truncated.complete
    assert decoded.optimality_gap_bound == truncated.optimality_gap_bound
    assert decoded.incomplete_branches == truncated.incomplete_branches
    assert decoded.search_stats.budget_interrupts == \
        truncated.search_stats.budget_interrupts


# ---------------------------------------------------------------------------
# Fault-tolerant parallel driver
# ---------------------------------------------------------------------------

def test_sigkilled_worker_loses_no_branches(small_env, small_job,
                                            small_topology, monkeypatch,
                                            tmp_path):
    """A worker SIGKILLed mid-branch breaks the whole pool; the driver must
    retry the dead branches on a fresh pool and return the same plan a
    clean solve finds, marked incomplete with the salvaged branches
    listed."""
    objective = Objective.max_throughput()
    serial = SailorPlanner(small_env).plan(small_job, small_topology,
                                           objective)

    monkeypatch.setenv("SAILOR_PLANNER_FAULT", "sigkill:*:*")
    monkeypatch.setenv("SAILOR_PLANNER_FAULT_ONCE",
                       str(tmp_path / "fault_once"))
    result = ParallelPlanner(small_env, max_workers=2).plan(
        small_job, small_topology, objective)
    assert result.found
    assert not result.complete
    assert result.incomplete_branches
    assert "salvaged" in result.notes
    # Zero lost branches: the same optimum and the same amount of search.
    assert plan_to_json(result.plan) == plan_to_json(serial.plan)
    assert result.candidates_evaluated == serial.candidates_evaluated
    assert result.search_stats.nodes_explored == \
        serial.search_stats.nodes_explored
    # The fault fired exactly once (the once-file is the proof).
    assert os.path.exists(tmp_path / "fault_once")


def test_sigkill_on_one_branch_lists_that_branch(small_env, small_job,
                                                 small_topology, monkeypatch,
                                                 tmp_path):
    """Targeted fault spec: only the named (pp, mbs) branch dies; it is
    retried and the result lists it as salvaged."""
    objective = Objective.max_throughput()
    serial = SailorPlanner(small_env).plan(small_job, small_topology,
                                           objective)

    monkeypatch.setenv("SAILOR_PLANNER_FAULT", "sigkill:2:2")
    monkeypatch.setenv("SAILOR_PLANNER_FAULT_ONCE",
                       str(tmp_path / "fault_once"))
    result = ParallelPlanner(small_env, max_workers=2).plan(
        small_job, small_topology, objective)
    assert result.found
    assert not result.complete
    assert "P2/mbs2" in result.incomplete_branches
    assert plan_to_json(result.plan) == plan_to_json(serial.plan)
    assert result.candidates_evaluated == serial.candidates_evaluated


def test_wedged_worker_is_abandoned_within_grace(small_env, small_job,
                                                 small_topology, monkeypatch,
                                                 tmp_path):
    """A hung worker (fault hook sleeps far past the grace) must not pin
    the call: the branch times out, is re-run, and the plan matches a
    clean solve."""
    import time as time_mod

    objective = Objective.max_throughput()
    serial = SailorPlanner(small_env).plan(small_job, small_topology,
                                           objective)

    monkeypatch.setenv("SAILOR_PLANNER_FAULT", "hang:*:*:60")
    monkeypatch.setenv("SAILOR_PLANNER_FAULT_ONCE",
                       str(tmp_path / "fault_once"))
    start = time_mod.perf_counter()
    result = ParallelPlanner(small_env, config=PlannerConfig(
        branch_timeout_s=3.0), max_workers=2).plan(
        small_job, small_topology, objective)
    elapsed = time_mod.perf_counter() - start
    assert elapsed < 30.0  # far below the 60 s hang
    assert result.found
    assert not result.complete
    assert result.incomplete_branches
    assert plan_to_json(result.plan) == plan_to_json(serial.plan)
